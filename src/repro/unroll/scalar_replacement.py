"""Scalar replacement at the analysis level (sections 3.3 and 4.3).

Scalar replacement keeps reused array values in registers so that only one
memory operation per register-reuse chain survives.  This module computes
the *plan* for a (possibly already unroll-and-jammed) nest: which textual
references still issue memory operations, and how many registers the
replaced values occupy.  The simulator and the cost models consume the
plan; the underlying chain construction is shared with the unroll tables,
so the plan provably agrees with what the tables predicted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.matrixform import occurrences
from repro.ir.nodes import LoopNest
from repro.reuse.ugs import partition_ugs
from repro.unroll.streams import conservative_chains, is_analyzable, stream_chains

@dataclass(frozen=True)
class ScalarReplacementPlan:
    """Which occurrences touch memory after scalar replacement.

    ``memory_positions`` holds the textual positions (see
    :class:`repro.ir.matrixform.RefOccurrence`) that still issue a load or
    store; every other array access comes from a register.
    """

    nest: LoopNest
    memory_positions: frozenset[int]
    registers: int
    total_references: int

    @property
    def memory_ops(self) -> int:
        return len(self.memory_positions)

    @property
    def removed(self) -> int:
        return self.total_references - self.memory_ops

    def issues_memory_op(self, position: int) -> bool:
        return position in self.memory_positions

def plan_scalar_replacement(nest: LoopNest) -> ScalarReplacementPlan:
    """Build the plan by chaining each UGS at zero unroll.

    Chain heads (generators and stores) keep their memory operation; every
    other chain member reads its value from a register.  Register cost per
    chain is innermost span + 1 (Callahan-Carr-Kennedy).
    """
    zero = tuple(0 for _ in range(nest.depth))
    memory_positions: set[int] = set()
    registers = 0
    total = len(occurrences(nest))
    for ugs in partition_ugs(nest):
        if is_analyzable(ugs):
            summary = stream_chains(ugs, zero, dims=())
        else:
            summary = conservative_chains(ugs, zero, dims=())
        registers += summary.registers
        for chain in summary.chains:
            if chain.hoisted:
                # Innermost-invariant: load hoisted above the loop, store
                # sunk below it -- no per-iteration access.
                continue
            head_member = chain.nodes[0][0]
            memory_positions.add(ugs.members[head_member].position)
            # Stores inside a chain always write through to memory even
            # when a later read reuses the value from a register.
            for member_idx, _ in chain.nodes[1:]:
                if ugs.members[member_idx].is_write:
                    memory_positions.add(ugs.members[member_idx].position)
    return ScalarReplacementPlan(
        nest=nest,
        memory_positions=frozenset(memory_positions),
        registers=registers,
        total_references=total,
    )
