"""Unroll vectors and the bounded unroll space (section 4.1).

An unroll vector u has one entry per loop of the nest (outermost first);
``u[k]`` is the number of *extra* body copies for loop k, so the unrolled
step is ``u[k] + 1``.  The innermost entry is always 0 -- the innermost loop
is never unroll-and-jammed.  The search space is a box: the chosen loops
range over ``0..bound`` and everything else is pinned at 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, Sequence

UnrollVector = tuple[int, ...]

#: Default per-loop unroll bound; the paper bounds the space in each
#: dimension and limits unrolling to at most 2 loops (§4.5).
DEFAULT_BOUND = 8

@dataclass(frozen=True)
class UnrollSpace:
    """The box of candidate unroll vectors for a nest.

    ``depth`` is the nest depth; ``dims`` the loop levels being unrolled
    (never the innermost); ``bounds[k]`` the inclusive maximum for dims[k].
    """

    depth: int
    dims: tuple[int, ...]
    bounds: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.dims) != len(self.bounds):
            raise ValueError("dims and bounds must align")
        if len(set(self.dims)) != len(self.dims):
            raise ValueError("duplicate unroll dimensions")
        for dim in self.dims:
            if not 0 <= dim < self.depth:
                raise ValueError(f"dimension {dim} outside nest of depth {self.depth}")
            if dim == self.depth - 1:
                raise ValueError("the innermost loop is never unrolled")
        if any(b < 0 for b in self.bounds):
            raise ValueError("bounds must be non-negative")

    @staticmethod
    def for_dims(depth: int, dims: Sequence[int],
                 bound: int = DEFAULT_BOUND) -> "UnrollSpace":
        return UnrollSpace(depth, tuple(dims), tuple(bound for _ in dims))

    def embed(self, reduced: Sequence[int]) -> UnrollVector:
        """Lift a vector over ``dims`` to a full-depth unroll vector."""
        if len(reduced) != len(self.dims):
            raise ValueError("reduced vector length mismatch")
        full = [0] * self.depth
        for dim, value in zip(self.dims, reduced):
            full[dim] = value
        return tuple(full)

    def project(self, full: UnrollVector) -> tuple[int, ...]:
        """Restrict a full-depth vector to the unrolled dimensions."""
        return tuple(full[d] for d in self.dims)

    def contains(self, full: UnrollVector) -> bool:
        if len(full) != self.depth:
            return False
        for level, value in enumerate(full):
            if level in self.dims:
                if not 0 <= value <= self.bounds[self.dims.index(level)]:
                    return False
            elif value != 0:
                return False
        return True

    def __iter__(self) -> Iterator[UnrollVector]:
        """All unroll vectors of the box, lexicographic order."""
        for reduced in product(*(range(b + 1) for b in self.bounds)):
            yield self.embed(reduced)

    def __len__(self) -> int:
        size = 1
        for b in self.bounds:
            size *= b + 1
        return size

def body_copies(u: UnrollVector) -> int:
    """Number of body copies created by unroll vector u: prod(u_k + 1)."""
    copies = 1
    for entry in u:
        copies *= entry + 1
    return copies

def offsets_box(u: UnrollVector, dims: Sequence[int]) -> Iterator[tuple[int, ...]]:
    """All copy offsets over the given dims: the box 0..u[d] per dim."""
    yield from product(*(range(u[d] + 1) for d in dims))

def dominates(a: Sequence[int], b: Sequence[int]) -> bool:
    """Componentwise a >= b."""
    return all(x >= y for x, y in zip(a, b))
