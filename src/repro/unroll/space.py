"""Unroll vectors and the bounded unroll space (section 4.1).

An unroll vector u has one entry per loop of the nest (outermost first);
``u[k]`` is the number of *extra* body copies for loop k, so the unrolled
step is ``u[k] + 1``.  The innermost entry is always 0 -- the innermost loop
is never unroll-and-jammed.  The search space is a box: the chosen loops
range over ``0..bound`` and everything else is pinned at 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import product
from typing import Iterator, Sequence

UnrollVector = tuple[int, ...]

#: Default per-loop unroll bound; the paper bounds the space in each
#: dimension and limits unrolling to at most 2 loops (§4.5).
DEFAULT_BOUND = 8

@dataclass(frozen=True)
class UnrollSpace:
    """The box of candidate unroll vectors for a nest.

    ``depth`` is the nest depth; ``dims`` the loop levels being unrolled
    (never the innermost); ``bounds[k]`` the inclusive maximum for dims[k].
    """

    depth: int
    dims: tuple[int, ...]
    bounds: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.dims) != len(self.bounds):
            raise ValueError("dims and bounds must align")
        if len(set(self.dims)) != len(self.dims):
            raise ValueError("duplicate unroll dimensions")
        for dim in self.dims:
            if not 0 <= dim < self.depth:
                raise ValueError(f"dimension {dim} outside nest of depth {self.depth}")
            if dim == self.depth - 1:
                raise ValueError("the innermost loop is never unrolled")
        if any(b < 0 for b in self.bounds):
            raise ValueError("bounds must be non-negative")
        # Not a dataclass field (eq/hash/repr are unaffected): a level ->
        # bound mapping so `contains` runs in O(depth) instead of calling
        # dims.index per level.
        object.__setattr__(self, "_bound_by_level",
                           dict(zip(self.dims, self.bounds)))

    @staticmethod
    def for_dims(depth: int, dims: Sequence[int],
                 bound: int = DEFAULT_BOUND) -> "UnrollSpace":
        return UnrollSpace(depth, tuple(dims), tuple(bound for _ in dims))

    def embed(self, reduced: Sequence[int]) -> UnrollVector:
        """Lift a vector over ``dims`` to a full-depth unroll vector."""
        if len(reduced) != len(self.dims):
            raise ValueError("reduced vector length mismatch")
        full = [0] * self.depth
        for dim, value in zip(self.dims, reduced):
            full[dim] = value
        return tuple(full)

    def project(self, full: UnrollVector) -> tuple[int, ...]:
        """Restrict a full-depth vector to the unrolled dimensions."""
        return tuple(full[d] for d in self.dims)

    def contains(self, full: UnrollVector) -> bool:
        if len(full) != self.depth:
            return False
        by_level = self._bound_by_level
        for level, value in enumerate(full):
            bound = by_level.get(level)
            if bound is not None:
                if not 0 <= value <= bound:
                    return False
            elif value != 0:
                return False
        return True

    def __iter__(self) -> Iterator[UnrollVector]:
        """All unroll vectors of the box, lexicographic order."""
        # Fast path over repeated embed(): write each reduced point into a
        # reusable full-depth template (the length check is loop-invariant).
        template = [0] * self.depth
        dims = self.dims
        for reduced in box_tuple(tuple(b + 1 for b in self.bounds)):
            for dim, value in zip(dims, reduced):
                template[dim] = value
            yield tuple(template)

    def reduced_box(self) -> tuple[tuple[int, ...], ...]:
        """All reduced points of the box (cached, lexicographic order)."""
        return box_tuple(tuple(b + 1 for b in self.bounds))

    def __len__(self) -> int:
        size = 1
        for b in self.bounds:
            size *= b + 1
        return size

def body_copies(u: UnrollVector) -> int:
    """Number of body copies created by unroll vector u: prod(u_k + 1)."""
    copies = 1
    for entry in u:
        copies *= entry + 1
    return copies

@lru_cache(maxsize=4096)
def box_tuple(sizes: tuple[int, ...]) -> tuple[tuple[int, ...], ...]:
    """The materialized box ``product(range(s) for s in sizes)``.

    The table builders enumerate the same small boxes thousands of times
    per analysis; caching the materialized tuples (keyed only on the box
    shape) removes the repeated product() construction.
    """
    return tuple(product(*(range(size) for size in sizes)))

def offsets_box(u: UnrollVector, dims: Sequence[int]) -> Iterator[tuple[int, ...]]:
    """All copy offsets over the given dims: the box 0..u[d] per dim."""
    yield from box_tuple(tuple(u[d] + 1 for d in dims))

def dominates(a: Sequence[int], b: Sequence[int]) -> bool:
    """Componentwise a >= b."""
    return all(x >= y for x, y in zip(a, b))
