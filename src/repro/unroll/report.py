"""Human-readable reports of the unroll-and-jam decision.

Collects everything a compiler writer would want to see about one nest:
the reuse structure, the candidate loops, the chosen vector with its
balance breakdown and register budget, and the transformed code -- used by
the command-line interface and the examples.
"""

from __future__ import annotations

from fractions import Fraction

from repro.balance import loop_balance
from repro.ir.nodes import LoopNest
from repro.ir.printer import format_nest
from repro.machine.model import MachineModel
from repro.machine.schedule import schedule_body
from repro.reuse import (
    innermost_localized_space,
    partition_ugs,
    ugs_memory_cost,
)
from repro.unroll.optimize import OptimizationResult, choose_unroll
from repro.unroll.safety import UNBOUNDED
from repro.unroll.scalar_replacement import plan_scalar_replacement
from repro.unroll.sr_codegen import (
    ScalarReplacementError,
    format_scalar_replaced,
    scalar_replace,
)
from repro.unroll.transform import unroll_and_jam

def reuse_summary(nest: LoopNest, line_size: int = 4) -> str:
    """Per-UGS reuse accounting of the original nest."""
    localized = innermost_localized_space(nest)
    lines = [f"Uniformly generated sets ({nest.name}):"]
    for ugs in partition_ugs(nest):
        summary = ugs_memory_cost(ugs, localized, line_size)
        traits = []
        if summary.self_temporal_dim:
            traits.append("self-temporal")
        if summary.self_spatial:
            traits.append("self-spatial")
        trait_text = ", ".join(traits) if traits else "no self reuse"
        lines.append(
            f"  {ugs.pretty()}")
        lines.append(
            f"    g_T={summary.g_t} g_S={summary.g_s} {trait_text}; "
            f"Eq.1 cost {float(summary.cost):.3f} accesses/iter")
    return "\n".join(lines)

def _safety_text(bound: int) -> str:
    return "unbounded" if bound >= UNBOUNDED else str(bound)

def optimization_report(nest: LoopNest, machine: MachineModel,
                        result: OptimizationResult | None = None,
                        bound: int = 8,
                        include_cache: bool = True,
                        show_code: bool = True) -> str:
    """The full decision report for one nest on one machine."""
    if result is None:
        result = choose_unroll(nest, machine, bound=bound,
                               include_cache=include_cache)
    point = result.tables.point(result.unroll)
    breakdown = loop_balance(point, machine, include_cache)

    lines = [f"=== unroll-and-jam report: {nest.name} on {machine.name} ==="]
    if show_code:
        lines.append("")
        lines.append(format_nest(nest))
    lines.append("")
    lines.append(reuse_summary(nest, machine.cache_line_words))
    lines.append("")
    lines.append(f"machine balance beta_M = {float(machine.balance):.3f}, "
                 f"{machine.registers} fp registers, "
                 f"{machine.cache_line_words}-word lines, "
                 f"miss penalty {machine.miss_penalty}")
    safety = ", ".join(
        f"{loop.index}:{_safety_text(s)}"
        for loop, s in zip(nest.loops, result.safety))
    lines.append(f"safety bounds: {safety}")
    lines.append(f"candidate loops: "
                 f"{[nest.loops[c].index for c in result.candidates]}")
    lines.append("")
    lines.append(f"chosen unroll vector: {result.unroll} "
                 f"({'register-feasible' if result.feasible else 'fallback'})")
    lines.append(f"  flops/iteration:      {point.flops}")
    lines.append(f"  memory ops/iteration: {point.memory_ops}")
    lines.append(f"  cache cost (Eq.1):    {float(point.cache_cost):.3f}")
    lines.append(f"  registers:            {point.registers} / "
                 f"{machine.registers}")
    lines.append(f"  loop balance beta_L:  {float(breakdown.balance):.3f} "
                 f"(objective {float(result.objective):.3f})")

    main = unroll_and_jam(nest, result.unroll).main
    sched = schedule_body(main, machine)
    lines.append(f"  scheduled body:       makespan {sched.makespan} "
                 f"cycles, steady-state II {float(sched.initiation_interval):.2f}")

    if show_code and any(result.unroll):
        lines.append("")
        lines.append("transformed (jammed) loop:")
        lines.append(format_nest(main))
        try:
            sr = scalar_replace(main)
            lines.append("")
            lines.append("after scalar replacement:")
            lines.append(format_scalar_replaced(sr))
        except ScalarReplacementError as err:
            lines.append(f"(scalar replacement skipped: {err})")
    return "\n".join(lines)
