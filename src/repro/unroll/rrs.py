"""Register-reuse sets and mergeable register-reuse sets (Figure 4, §4.3).

For registers the localized space is the innermost loop only: scalar
replacement keeps a value in a register across innermost iterations.  A
GTS (w.r.t. that space) is walked in *flow order* -- the order in which its
members touch any fixed memory location, i.e. lexicographically decreasing
constant vectors, ties broken textually -- and split at definitions: a
store produces a new value, so reuse never crosses it.  Each resulting
register-reuse set (RRS) issues exactly one memory operation per iteration.

RRS leaders are then grouped into *mergeable* register-reuse sets (MRRS):
a maximal run of RRSs, in flow order, in which only the first may be led by
a definition.  Copies of two RRSs can only merge under unroll-and-jam when
they belong to the same MRRS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.matrixform import RefOccurrence, constant_vector
from repro.linalg import VectorSpace
from repro.reuse.group import group_temporal_partition
from repro.reuse.ugs import UniformlyGeneratedSet

def flow_key(occ: RefOccurrence):
    """Sort key putting earlier touchers of a fixed location first."""
    return (tuple(-c for c in constant_vector(occ.ref)), occ.position)

@dataclass(frozen=True)
class RegisterReuseSet:
    """One RRS: members in flow order; the first member is the generator."""

    members: tuple[RefOccurrence, ...]

    @property
    def leader(self) -> RefOccurrence:
        return self.members[0]

    @property
    def led_by_definition(self) -> bool:
        return self.leader.is_write

    def pretty(self) -> str:
        return "RRS[" + ", ".join(m.pretty() for m in self.members) + "]"

@dataclass(frozen=True)
class MergeableSet:
    """An MRRS: RRSs whose copies may merge after unroll-and-jam."""

    sets: tuple[RegisterReuseSet, ...]

    @property
    def superleader(self) -> RefOccurrence:
        """The source of the value that flows through the whole set: the
        generator of the earliest-touching RRS."""
        return self.sets[0].leader

def innermost_space(depth: int) -> VectorSpace:
    return VectorSpace.spanned_by_axes([depth - 1], depth)

def compute_rrs(ugs: UniformlyGeneratedSet) -> list[RegisterReuseSet]:
    """Figure 4: split each innermost-localized GTS at definitions."""
    localized = innermost_space(ugs.matrix.ncols)
    sets: list[RegisterReuseSet] = []
    for group in group_temporal_partition(ugs, localized):
        ordered = sorted(group, key=flow_key)
        current: list[RefOccurrence] = []
        for occ in ordered:
            if occ.is_write and current:
                sets.append(RegisterReuseSet(tuple(current)))
                current = [occ]
            else:
                current.append(occ)
        if current:
            sets.append(RegisterReuseSet(tuple(current)))
    sets.sort(key=lambda s: flow_key(s.leader))
    return sets

def compute_mrrs(rrs_list: list[RegisterReuseSet]) -> list[MergeableSet]:
    """Group RRSs (already in flow order) into mergeable runs.

    A definition-led RRS may only open a run: value reuse cannot cross a
    definition, so a def-led RRS arriving mid-run starts a new MRRS.
    """
    groups: list[MergeableSet] = []
    current: list[RegisterReuseSet] = []
    for rrs in rrs_list:
        if rrs.led_by_definition and current:
            groups.append(MergeableSet(tuple(current)))
            current = [rrs]
        else:
            current.append(rrs)
    if current:
        groups.append(MergeableSet(tuple(current)))
    return groups
