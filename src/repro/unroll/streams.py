"""Exact reuse-group and register-stream counting on the copy lattice.

The paper's central trick is computing, for every unroll vector u, how many
group-temporal sets, group-spatial sets, register-reuse sets and registers
the *unrolled* loop will have -- without ever materializing unrolled code.
This module does that exactly: the copies of a UGS's members form a lattice
``members x box(u)``, merge relations between lattice nodes come from the
merge-point solver, and the counts are connected components / chains of
that lattice.

Everything here is validated against the brute-force baseline that does
materialize the unrolled body (tests/test_tables_vs_bruteforce.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from itertools import product
from typing import Iterator

from repro.fastpath import fast_enabled
from repro.ir.matrixform import RefOccurrence, constant_vector
from repro.linalg import Matrix, VectorSpace
from repro.reuse.ugs import UniformlyGeneratedSet
from repro.unroll.merge import MergeSolution, solve_merge
from repro.unroll.space import UnrollVector, box_tuple

def used_dims(matrix: Matrix, dims: tuple[int, ...],
              spatial: bool = False) -> tuple[int, ...]:
    """The unrolled dimensions the UGS actually depends on.

    Copies along a dimension whose H column is zero are textually identical
    references: they never create new groups, so the lattice only extends
    along used dimensions.
    """
    work = matrix.with_zero_row(0) if spatial else matrix
    return tuple(d for d in dims if any(x != 0 for x in work.column(d)))

def _offsets(u: UnrollVector, dims: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
    yield from box_tuple(tuple(u[d] + 1 for d in dims))

_INT_FRACTIONS: dict[int, Fraction] = {}

def int_fraction(value: int) -> Fraction:
    """An interned ``Fraction(value)`` for the small integers the counting
    paths produce; Fractions are immutable, so sharing instances is safe."""
    got = _INT_FRACTIONS.get(value)
    if got is None:
        got = Fraction(value)
        if len(_INT_FRACTIONS) < 65536:
            _INT_FRACTIONS[value] = got
    return got

class _UnionFind:
    """Union-find over dense integer nodes ``0..n-1`` (flat list parents).

    Lattice nodes are linearized as ``member * box_size + offset_index``
    (row-major offsets), replacing the former dict-of-tuples forest.  The
    union sequence and hence the root structure are unchanged, so
    component counts *and* the discovery order of :meth:`components` are
    identical to the seed implementation.
    """

    __slots__ = ("parent",)

    def __init__(self, count: int):
        self.parent = list(range(count))

    def find(self, node: int) -> int:
        parent = self.parent
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra

    def component_count(self) -> int:
        return sum(1 for node, up in enumerate(self.parent) if node == up)

    def components(self) -> dict[int, list[int]]:
        groups: dict[int, list[int]] = {}
        for node in range(len(self.parent)):
            groups.setdefault(self.find(node), []).append(node)
        return groups

def _box_geometry(u: UnrollVector,
                  reduced: tuple[int, ...]) -> tuple[tuple[int, ...],
                                                     tuple[int, ...], int]:
    """(sizes, row-major strides, total cells) of the copy box over
    ``reduced``; offset ``b`` linearizes to ``sum(b[t] * strides[t])``."""
    sizes = tuple(u[d] + 1 for d in reduced)
    strides = [1] * len(sizes)
    for i in range(len(sizes) - 2, -1, -1):
        strides[i] = strides[i + 1] * sizes[i + 1]
    total = 1
    for size in sizes:
        total *= size
    return sizes, tuple(strides), total

@lru_cache(maxsize=16384)
def _clipped_indices(k: tuple[int, ...],
                     sizes: tuple[int, ...]) -> tuple[int, ...]:
    """Linear indices of every offset ``b`` with both ``b`` and ``b + k``
    inside the box, in lexicographic (= increasing-index) order.

    The seed code tested ``b + k in box_set`` per cell; the in-range cells
    form a sub-box computable directly from ``k``, and the shifted node is
    always ``index + dot(k, strides)``.
    """
    strides = [1] * len(sizes)
    for i in range(len(sizes) - 2, -1, -1):
        strides[i] = strides[i + 1] * sizes[i + 1]
    ranges = []
    for kt, size in zip(k, sizes):
        lo = max(0, -kt)
        hi = min(size - 1, size - 1 - kt)
        if lo > hi:
            return ()
        ranges.append(range(lo, hi + 1))
    return tuple(sum(c * s for c, s in zip(coords, strides))
                 for coords in product(*ranges))

def _union_merges(uf: _UnionFind, merges: list["PairMerge"],
                  sizes: tuple[int, ...], strides: tuple[int, ...],
                  box_size: int) -> None:
    """Apply every pair merge across the whole box (same union sequence as
    the seed's per-cell membership test)."""
    for pm in merges:
        k = pm.solution.offset
        indices = _clipped_indices(k, sizes)
        if not indices:
            continue
        delta = sum(kt * st for kt, st in zip(k, strides))
        base_i = pm.i * box_size + delta
        base_j = pm.j * box_size
        for idx in indices:
            uf.union(base_i + idx, base_j + idx)

@dataclass(frozen=True)
class PairMerge:
    """Precomputed merge data between members i < j of one UGS."""

    i: int
    j: int
    solution: MergeSolution  # offset in *used-dims reduced* coordinates

def pairwise_merges(ugs: UniformlyGeneratedSet, dims: tuple[int, ...],
                    localized: VectorSpace, spatial: bool = False,
                    line_size: int | None = None) -> list[PairMerge]:
    """Merge solutions for every member pair, in reduced used-dim coords."""
    reduced = used_dims(ugs.matrix, dims, spatial)
    consts = ugs.constants()
    merges = []
    for i in range(len(consts)):
        for j in range(i + 1, len(consts)):
            delta = tuple(cj - ci for ci, cj in zip(consts[i], consts[j]))
            sol = solve_merge(ugs.matrix, delta, reduced, localized,
                              spatial=spatial, line_size=line_size)
            if sol is not None:
                merges.append(PairMerge(i, j, sol))
    return merges

def group_count(ugs: UniformlyGeneratedSet, u: UnrollVector,
                dims: tuple[int, ...], localized: VectorSpace,
                spatial: bool = False,
                line_size: int | None = None,
                merges: list[PairMerge] | None = None) -> int:
    """Number of reuse groups (GTS or GSS) among all copies at unroll u.

    Copy ``i @ (b + k)`` and copy ``j @ b`` share a group when k solves the
    pair's merge equation; components of that relation are the groups.
    """
    reduced = used_dims(ugs.matrix, dims, spatial)
    if merges is None:
        merges = pairwise_merges(ugs, dims, localized, spatial, line_size)
    sizes, strides, box_size = _box_geometry(u, reduced)
    uf = _UnionFind(ugs.size * box_size)
    _union_merges(uf, merges, sizes, strides, box_size)
    return uf.component_count()

@dataclass(frozen=True)
class SpatialRelation:
    """How copies of members i and j of a UGS share cache lines.

    Copies ``i @ a`` and ``j @ b`` are group-spatial related when
    ``a - b`` equals ``det_offset`` on the determined dimensions and the
    first-dimension residual, after the free (contiguous-dimension)
    offsets move it, stays within a line:

        free_motion  or  |base_residual - sum(h_k * f_k)| < line_size
    """

    i: int
    j: int
    det_dims: tuple[int, ...]  # positions into the reduced dim tuple
    det_offset: tuple[int, ...]
    free_dims: tuple[int, ...]  # positions into the reduced dim tuple
    free_coeffs: tuple[Fraction, ...]
    base_residual: Fraction
    free_motion: bool

    def relates(self, d: tuple[int, ...], line_size: int | None) -> bool:
        """Is offset difference ``d`` (over the reduced dims) related?"""
        for pos, need in zip(self.det_dims, self.det_offset):
            if d[pos] != need:
                return False
        if self.free_motion or line_size is None:
            return True
        residual = self.base_residual
        for pos, coef in zip(self.free_dims, self.free_coeffs):
            residual -= coef * d[pos]
        return abs(residual) < line_size

def spatial_relations(ugs: UniformlyGeneratedSet, dims: tuple[int, ...],
                      localized: VectorSpace) -> list[SpatialRelation]:
    """Pairwise spatial-relation skeletons for an SIV-separable UGS.

    ``dims`` are the unrolled loop levels; the reduced coordinate system
    is ``used_dims(H, dims)`` (all dims the UGS touches -- including those
    feeding only the contiguous first array dimension, which temporal
    analysis may ignore but spatial analysis must keep: their copies land
    on nearby words).  Self relations (i == j) are included: copies of one
    reference share lines with each other.
    """
    matrix = ugs.matrix
    reduced = used_dims(matrix, dims, spatial=False)
    dim_pos = {dim: pos for pos, dim in enumerate(reduced)}
    consts = ugs.constants()
    depth = matrix.ncols

    def row_driver(row_idx: int) -> tuple[int | None, Fraction]:
        for col in range(depth):
            coef = matrix.entry(row_idx, col)
            if coef != 0:
                return col, coef
        return None, Fraction(0)

    relations: list[SpatialRelation] = []
    for i in range(len(consts)):
        for j in range(i, len(consts)):
            delta = [cj - ci for ci, cj in zip(consts[i], consts[j])]
            det: dict[int, int] = {}
            free_dims: list[int] = []
            free_coeffs: list[Fraction] = []
            base_residual = Fraction(delta[0])
            free_motion = False
            feasible = True
            for row_idx in range(matrix.nrows):
                driver, coef = row_driver(row_idx)
                in_l = driver is not None and localized.contains(
                    tuple(1 if k == driver else 0 for k in range(depth)))
                if row_idx == 0:
                    if driver is None:
                        continue
                    if in_l:
                        free_motion = True
                    elif driver in dim_pos:
                        free_dims.append(dim_pos[driver])
                        free_coeffs.append(coef)
                    # a non-unrolled, non-localized driver: copies cannot
                    # move along it; the fixed delta stays in the residual
                    continue
                need = Fraction(delta[row_idx])
                if driver is None:
                    if need != 0:
                        feasible = False
                        break
                    continue
                if in_l:
                    if (need / coef).denominator != 1:
                        feasible = False
                        break
                    continue
                if driver in dim_pos:
                    step = need / coef
                    if step.denominator != 1:
                        feasible = False
                        break
                    det[dim_pos[driver]] = int(step)
                    continue
                if need != 0:
                    feasible = False
                    break
            if not feasible:
                continue
            relations.append(SpatialRelation(
                i=i, j=j,
                det_dims=tuple(sorted(det)),
                det_offset=tuple(det[k] for k in sorted(det)),
                free_dims=tuple(free_dims),
                free_coeffs=tuple(free_coeffs),
                base_residual=base_residual,
                free_motion=free_motion,
            ))
    return relations

def group_count_spatial(ugs: UniformlyGeneratedSet, u: UnrollVector,
                        dims: tuple[int, ...], localized: VectorSpace,
                        line_size: int | None,
                        relations: list[SpatialRelation] | None = None) -> int:
    """Number of group-spatial sets among all copies at unroll u.

    Unlike the temporal count, spatial edges depend on the actual offset
    difference (a copy in the middle can bridge two references a full line
    apart), so edges are enumerated per offset pair via the relation
    skeletons.
    """
    matrix = ugs.matrix
    reduced = used_dims(matrix, dims, spatial=False)
    if relations is None:
        relations = spatial_relations(ugs, dims, localized)
    sizes, strides, box_size = _box_geometry(u, reduced)
    uf = _UnionFind(ugs.size * box_size)
    spans = [range(-u[d], u[d] + 1) for d in reduced]
    diffs = list(product(*spans)) if reduced else [()]
    memoize = fast_enabled()
    for rel in relations:
        # The relation predicate depends only on (d, line_size), and the
        # Mobius table construction revisits the same diffs for every
        # unroll point of the box -- memoize per relation instance (bypassed
        # in seed mode so the reference measurement pays the original cost).
        if memoize:
            memo = rel.__dict__.get("_relates_memo")
            if memo is None:
                memo = {}
                object.__setattr__(rel, "_relates_memo", memo)
        for d in diffs:
            if rel.i == rel.j and not any(d):
                continue
            if memoize:
                related = memo.get((d, line_size))
                if related is None:
                    related = rel.relates(d, line_size)
                    memo[(d, line_size)] = related
            else:
                related = rel.relates(d, line_size)
            if not related:
                continue
            indices = _clipped_indices(d, sizes)
            if not indices:
                continue
            delta = sum(dt * st for dt, st in zip(d, strides))
            base_i = rel.i * box_size + delta
            base_j = rel.j * box_size
            for idx in indices:
                uf.union(base_i + idx, base_j + idx)
    return uf.component_count()

@dataclass(frozen=True)
class Chain:
    """One register-reuse chain: consecutive touches of a location stream
    between definitions.

    ``hoisted`` marks innermost-invariant chains: the whole stream touches
    one location for the entire innermost loop, so the load is hoisted
    above it (and any store sunk below it) -- the paper's "A(J) can be held
    in a register".  A hoisted chain costs no per-iteration memory
    operation and exactly one register.
    """

    nodes: tuple[tuple[int, tuple[int, ...]], ...]  # (member index, offset)
    span: Fraction  # innermost-iteration distance head..tail
    hoisted: bool = False
    #: per-node touch times relative to the chain head (0 for the head);
    #: the scalar-replacement code generator reads its rotation depth here.
    times: tuple[Fraction, ...] = ()

    @property
    def registers(self) -> int:
        if self.hoisted:
            return 1
        return int(self.span) + 1

    @property
    def memory_ops(self) -> int:
        return 0 if self.hoisted else 1

@dataclass(frozen=True)
class StreamSummary:
    """Register-level accounting of one UGS at one unroll vector."""

    chains: tuple[Chain, ...]

    @property
    def memory_ops(self) -> int:
        """One op per moving chain: the generator load, or the store of a
        def-led chain (scalar replacement removes every other access);
        hoisted (innermost-invariant) chains cost nothing per iteration."""
        return sum(chain.memory_ops for chain in self.chains)

    @property
    def registers(self) -> int:
        return sum(chain.registers for chain in self.chains)

def _inner_time_row(matrix: Matrix) -> tuple[int, Fraction] | None:
    """The (row, coefficient) through which the innermost loop subscripts
    the array, or None when the UGS is innermost-invariant."""
    inner_col = matrix.ncols - 1
    for row_idx in range(matrix.nrows):
        coef = matrix.entry(row_idx, inner_col)
        if coef != 0:
            return row_idx, coef
    return None

def stream_chains(ugs: UniformlyGeneratedSet, u: UnrollVector,
                  dims: tuple[int, ...],
                  merges: list[PairMerge] | None = None) -> StreamSummary:
    """Register-reuse chains of a UGS's copies at unroll u.

    Streams (copies touching the same location modulo innermost motion) are
    components of the temporal merge relation with L = innermost span.
    Within each stream, copies are ordered by innermost touch time (ties by
    textual position); a definition starts a new chain, a use joins the
    current one.  Registers per chain = innermost span + 1
    (Callahan-Carr-Kennedy).
    """
    return _chains_impl(ugs, u, dims, merges)[0]

def stream_chains_with_groups(ugs: UniformlyGeneratedSet, u: UnrollVector,
                              dims: tuple[int, ...],
                              merges: list[PairMerge] | None = None,
                              ) -> tuple[StreamSummary, int]:
    """:func:`stream_chains` plus the temporal group count.

    When the cache-localized space *is* the innermost loop (the default),
    the GTS relation and the stream relation union the same merges over the
    same lattice, so one union-find serves both: the group count is the
    component count of the stream forest -- exactly what
    :func:`group_count` would return for the same merges.
    """
    return _chains_impl(ugs, u, dims, merges)

def _chains_impl(ugs: UniformlyGeneratedSet, u: UnrollVector,
                 dims: tuple[int, ...],
                 merges: list[PairMerge] | None = None,
                 ) -> tuple[StreamSummary, int]:
    depth = ugs.matrix.ncols
    inner_space = VectorSpace.spanned_by_axes([depth - 1], depth)
    reduced = used_dims(ugs.matrix, dims, spatial=False)
    if merges is None:
        merges = pairwise_merges(ugs, dims, inner_space, spatial=False)

    sizes, strides, box_size = _box_geometry(u, reduced)
    box = box_tuple(sizes)
    uf = _UnionFind(ugs.size * box_size)
    _union_merges(uf, merges, sizes, strides, box_size)

    time_row = _inner_time_row(ugs.matrix)
    consts = ugs.constants()
    if time_row is not None:
        # Larger subscript value in the innermost-governed row means the
        # location is reached at an *earlier* innermost iteration.  The
        # entries and constants are integral in practice, so the time is a
        # single normalizing Fraction construction (value-identical to the
        # chained Fraction arithmetic it replaces); per-node times are
        # cached and shared between the sort key and the chain spans.
        row, coef = time_row
        row_entries = [ugs.matrix.entry(row, dim) for dim in reduced]
        if coef.denominator == 1 and all(e.denominator == 1
                                         for e in row_entries):
            coef = coef.numerator
            row_entries = [e.numerator for e in row_entries]
        time_cache: dict[tuple[int, tuple[int, ...]], Fraction] = {}

        def touch_time(member: int, offset: tuple[int, ...]) -> Fraction:
            key = (member, offset)
            got = time_cache.get(key)
            if got is None:
                shift = sum(e * o for e, o in zip(row_entries, offset))
                got = Fraction(-(consts[member][row] + shift), coef)
                time_cache[key] = got
            return got
    else:
        def touch_time(member: int, offset: tuple[int, ...]) -> Fraction:
            return Fraction(0)

    # Copies along dimensions the UGS does not subscript are textually
    # identical references: reads collapse (one load feeds them all), but
    # every *store* copy still writes through -- scalar replacement never
    # removes definitions (section 4.3).  Expand each lattice node over the
    # unused-dimension offsets before chaining so defs split correctly.
    unused = tuple(d for d in dims if d not in reduced)
    extra_box = list(_offsets(u, unused))
    reduced_pos = {d: i for i, d in enumerate(reduced)}
    unused_pos = {d: i for i, d in enumerate(unused)}

    def full_offset(b: tuple[int, ...], e: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(b[reduced_pos[d]] if d in reduced_pos else e[unused_pos[d]]
                     for d in dims)

    chains: list[Chain] = []
    if time_row is None:
        # Innermost-invariant UGS: each stream is a single location for the
        # whole innermost loop; its value lives in one register (load
        # hoisted, store sunk) regardless of how many members/copies touch
        # it.
        components = uf.components()
        for node_ids in components.values():
            nodes = [divmod(node, box_size) for node in node_ids]
            nodes = [(member, box[idx]) for member, idx in nodes]
            chains.append(Chain(tuple(nodes), Fraction(0), hoisted=True,
                                times=tuple(Fraction(0) for _ in nodes)))
        return StreamSummary(tuple(chains)), len(components)

    components = uf.components()
    for node_ids in components.values():
        nodes = [divmod(node, box_size) for node in node_ids]
        nodes = [(member, box[idx]) for member, idx in nodes]
        # Ties in touch time resolve by the textual order of the unrolled
        # code: copies are emitted in lexicographic offset order (loop
        # order, outermost first), then original statement order.
        expanded = [(member, b, e) for member, b in nodes for e in extra_box]
        ordered = sorted(
            expanded,
            key=lambda node: (touch_time(node[0], node[1]),
                              full_offset(node[1], node[2]),
                              ugs.members[node[0]].position))
        current: list[tuple[int, tuple[int, ...]]] = []
        for member_idx, b, _ in ordered:
            if ugs.members[member_idx].is_write and current:
                chains.append(_close_chain(current, touch_time))
                current = [(member_idx, b)]
            else:
                current.append((member_idx, b))
        if current:
            chains.append(_close_chain(current, touch_time))
    return StreamSummary(tuple(chains)), len(components)

def _close_chain(nodes: list[tuple[int, tuple[int, ...]]],
                 touch_time) -> Chain:
    times = [touch_time(m, b) for m, b in nodes]
    if all(t.denominator == 1 for t in times):
        # Integral touch times (the overwhelmingly common case): subtract
        # as ints and intern the results -- value-identical to the Fraction
        # subtractions below.
        nums = [t.numerator for t in times]
        base = min(nums)
        return Chain(tuple(nodes), int_fraction(max(nums) - base),
                     times=tuple(int_fraction(n - base) for n in nums))
    base = min(times)
    span = max(times) - base
    return Chain(tuple(nodes), span,
                 times=tuple(t - base for t in times))

def is_analyzable(ugs: UniformlyGeneratedSet) -> bool:
    """True when H has at most one non-zero per row and column (§3.5);
    outside that class the counts fall back to no-merging conservatism."""
    for row in ugs.matrix.rows:
        if sum(1 for x in row if x != 0) > 1:
            return False
    for j in range(ugs.matrix.ncols):
        if sum(1 for x in ugs.matrix.column(j) if x != 0) > 1:
            return False
    return True

def conservative_group_count(ugs: UniformlyGeneratedSet, u: UnrollVector,
                             dims: tuple[int, ...],
                             spatial: bool = False) -> int:
    """Fallback for non-SIV sets: every copy is its own group."""
    reduced = used_dims(ugs.matrix, dims, spatial)
    copies = 1
    for d in reduced:
        copies *= u[d] + 1
    return ugs.size * copies

def conservative_chains(ugs: UniformlyGeneratedSet, u: UnrollVector,
                        dims: tuple[int, ...]) -> StreamSummary:
    """Fallback for non-SIV sets: one single-node chain per copy (every
    copy, including textually identical ones, issues its own access)."""
    chains = []
    for idx in range(ugs.size):
        for b in _offsets(u, dims):
            chains.append(Chain(((idx, b),), Fraction(0)))
    return StreamSummary(tuple(chains))
