"""Literal implementations of the paper's table algorithms (Figs 2, 3, 5).

The production tables in :mod:`repro.unroll.tables` count reuse groups
exactly on the copy lattice.  This module instead transcribes the paper's
pseudocode: leaders sorted lexicographically, pairwise merge points
``r-hat``, per-offset decrements over *windows* between consecutive
superleader merge points, and the box-summing ``Sum`` function.  Both
styles are cross-tested; they agree on the reference class the paper
targets.

Two documented divergences of the paper's scheme (surfaced by this
reproduction and pinned by tests):

* **Mixed-sign merge offsets.**  The pseudocode only applies a merge whose
  offset vector lies in the unroll space (component-wise non-negative).
  Two references whose copies meet at a mixed-sign offset difference --
  e.g. constants (0,0) and (1,-2) under a two-loop unroll -- do merge in
  the actual unrolled code once both loops unroll far enough, which the
  window scheme misses (it over-counts groups).  The exact lattice count
  handles this.
* **Definition copies along unused dimensions.**  Per section 4.1 the
  unroll vector is projected onto the dimensions the UGS references, so
  textually identical copies are not counted.  For *stores* that is an
  undercount of memory operations (scalar replacement cannot delete a
  definition); the production RRS table counts them.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product

from repro.ir.matrixform import RefOccurrence, constant_vector
from repro.linalg import VectorSpace
from repro.reuse.group import group_spatial_partition, group_temporal_partition
from repro.reuse.ugs import UniformlyGeneratedSet
from repro.unroll.merge import solve_merge
from repro.unroll.rrs import compute_mrrs, compute_rrs
from repro.unroll.space import UnrollSpace, UnrollVector, dominates
from repro.unroll.streams import used_dims

class PaperTable:
    """The paper's per-offset table plus its ``Sum`` query (Figure 2)."""

    def __init__(self, space: UnrollSpace, reduced_dims: tuple[int, ...]):
        self.space = space
        #: positions (within space.dims) the UGS actually uses; offsets are
        #: projected onto these per section 4.1.
        self.reduced_positions = tuple(space.dims.index(d)
                                       for d in reduced_dims)
        bounds = [space.bounds[pos] for pos in self.reduced_positions]
        self.entries: dict[tuple[int, ...], int] = {
            offset: 0
            for offset in product(*(range(b + 1) for b in bounds))}

    def initialize(self, value: int) -> None:
        for offset in self.entries:
            self.entries[offset] = value

    def project(self, u: UnrollVector) -> tuple[int, ...]:
        reduced_full = self.space.project(u)
        return tuple(reduced_full[pos] for pos in self.reduced_positions)

    def decrement_window(self, lo: tuple[int, ...],
                         hi_exclusive: tuple[int, ...] | None,
                         amount: int = 1) -> None:
        """Subtract over the up-set of ``lo`` minus the up-set of
        ``hi_exclusive`` (the paper's 'between the newly computed value and
        the previous superleader's merge point')."""
        for offset in self.entries:
            if not dominates(offset, lo):
                continue
            if hi_exclusive is not None and dominates(offset, hi_exclusive):
                continue
            self.entries[offset] -= amount

    def sum(self, u: UnrollVector) -> int:
        """Figure 2's Sum: accumulate entries over offsets <= u."""
        target = self.project(u)
        total = 0
        for offset, value in self.entries.items():
            if dominates(target, offset):
                total += value
        return total

def _merge_point(ugs: UniformlyGeneratedSet, smaller: RefOccurrence,
                 greater: RefOccurrence, reduced_dims: tuple[int, ...],
                 localized: VectorSpace,
                 spatial: bool) -> tuple[int, ...] | None:
    """r-hat for a leader pair, or None when copies never merge inside the
    unroll space (non-negative offsets only, per the paper)."""
    delta = tuple(g - s for s, g in zip(constant_vector(smaller.ref),
                                        constant_vector(greater.ref)))
    sol = solve_merge(ugs.matrix, delta, reduced_dims, localized,
                      spatial=spatial)
    if sol is None:
        return None
    if any(k < 0 for k in sol.offset):
        return None  # outside the unroll space: the paper drops it
    return sol.offset

def compute_table(ugs: UniformlyGeneratedSet, leaders: list[RefOccurrence],
                  space: UnrollSpace, localized: VectorSpace,
                  spatial: bool = False) -> PaperTable:
    """Figure 2's ComputeTable over one set of group leaders.

    Leaders must be in lexicographically increasing constant order.  For
    each leader t the superleaders s < t are considered smallest first;
    each in-space merge point subtracts one over the window down to the
    previous superleader's merge point.
    """
    reduced_dims = used_dims(ugs.matrix, space.dims, spatial)
    table = PaperTable(space, reduced_dims)
    table.initialize(len(leaders))
    for t_idx in range(1, len(leaders)):
        previous: tuple[int, ...] | None = None
        for s_idx in range(t_idx):
            point = _merge_point(ugs, leaders[s_idx], leaders[t_idx],
                                 reduced_dims, localized, spatial)
            if point is None:
                continue
            table.decrement_window(point, previous)
            previous = point if previous is None else tuple(
                min(a, b) for a, b in zip(previous, point))
    return table

def gts_table(ugs: UniformlyGeneratedSet, space: UnrollSpace,
              localized: VectorSpace) -> PaperTable:
    """Figure 2: ComputeGTSTable for one uniformly generated set."""
    groups = group_temporal_partition(ugs, localized)
    leaders = [group[0] for group in groups]
    return compute_table(ugs, leaders, space, localized, spatial=False)

def gss_table(ugs: UniformlyGeneratedSet, space: UnrollSpace,
              localized: VectorSpace,
              line_size: int | None = None) -> PaperTable:
    """Figure 3: ComputeGSSTable -- identical to Figure 2 with H_S."""
    groups = group_spatial_partition(ugs, localized, line_size)
    leaders = [group[0] for group in groups]
    return compute_table(ugs, leaders, space, localized, spatial=True)

def rrs_table(ugs: UniformlyGeneratedSet, space: UnrollSpace) -> PaperTable:
    """Figure 5: ComputeRRSTable.

    Register-reuse-set leaders are split into mergeable sets (Figure 4);
    ComputeTable runs within each MRRS (copies of RRSs in different
    mergeable sets never merge) and the per-offset entries add up.
    """
    inner = VectorSpace.spanned_by_axes([ugs.matrix.ncols - 1],
                                        ugs.matrix.ncols)
    reduced_dims = used_dims(ugs.matrix, space.dims, spatial=False)
    combined = PaperTable(space, reduced_dims)
    combined.initialize(0)
    for mrrs in compute_mrrs(compute_rrs(ugs)):
        leaders = sorted((rrs.leader for rrs in mrrs.sets),
                         key=lambda occ: (constant_vector(occ.ref),
                                          occ.position))
        part = compute_table(ugs, leaders, space, inner, spatial=False)
        for offset, value in part.entries.items():
            combined.entries[offset] += value
    return combined
