"""The precomputed unroll tables (Figures 2, 3, 5 and 7 of the paper).

For every quantity the paper tabulates -- group-temporal sets, group-spatial
sets, register-reuse sets and register pressure -- we store a table of
*per-offset increments* T[u'] whose box sum over ``u' <= u`` yields the
value at unroll vector u (the paper's ``Sum`` function, Figure 2).  The
increments are obtained by Mobius inversion of the exact lattice counts of
:mod:`repro.unroll.streams`; the box-sum identity is exact by construction
and cross-checked against the brute-force baseline in the test suite.

Once built, answering "what are M, R, g_T, g_S at unroll u?" costs a table
lookup -- no unrolled data structure is ever materialized, which is the
efficiency claim against Wolf, Maydan & Chen's approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Callable

from repro.fastpath import fast_enabled
from repro.ir.nodes import LoopNest
from repro.linalg import VectorSpace
from repro.reuse.locality import innermost_localized_space
from repro.reuse.selfreuse import has_self_spatial, localized_temporal_dim
from repro.reuse.ugs import UniformlyGeneratedSet, partition_ugs
from repro.unroll.space import UnrollSpace, UnrollVector, body_copies
from repro.unroll.streams import (
    conservative_chains,
    conservative_group_count,
    group_count,
    group_count_spatial,
    is_analyzable,
    pairwise_merges,
    spatial_relations,
    int_fraction,
    stream_chains,
    stream_chains_with_groups,
    used_dims,
)

def _projected_count(count: Callable, dims: tuple[int, ...],
                     used: tuple[int, ...]) -> Callable:
    """Memoize a per-point count on the sub-box of the dims it depends on.

    A count that ignores some unrolled dimensions (its H columns there are
    zero) is constant along them, so the Mobius pass over the full box only
    needs one evaluation per distinct projection onto the used dims -- a
    2-D box over a 1-D set collapses from (b+1)^2 evaluations to b+1.
    """
    if used == dims:
        return count
    cache: dict[tuple[int, ...], tuple] = {}

    def wrapped(u):
        key = tuple(u[d] for d in used)
        got = cache.get(key)
        if got is None:
            got = count(u)
            cache[key] = got
        return got

    return wrapped

class OffsetTable:
    """Per-offset increments over the unroll box, queried by box sum.

    ``table[u'] = T(u')`` such that ``sum(T(u') for u' <= u) = count(u)``;
    entries may be negative (merges remove groups).

    By default the constructor also materializes the *inclusive prefix
    sums* (summed-area table) of the increments over the box, so
    :meth:`box_sum` answers in O(1) instead of scanning every increment.
    The scan is kept as :meth:`box_sum_scan` -- the seed algorithm, the
    fallback for tables whose increments fall outside the declared box,
    and the reference the parity fuzz suite compares against.
    """

    def __init__(self, dims: tuple[int, ...], bounds: tuple[int, ...],
                 increments: dict[tuple[int, ...], Fraction],
                 prefix: bool = True):
        self.dims = dims
        self.bounds = bounds
        self.increments = increments
        self._sizes = tuple(b + 1 for b in bounds)
        strides = [1] * len(bounds)
        for i in range(len(bounds) - 2, -1, -1):
            strides[i] = strides[i + 1] * self._sizes[i + 1]
        self._strides = tuple(strides)
        self._prefix = self._build_prefix() if prefix else None

    def _build_prefix(self) -> list | None:
        """Dense inclusive prefix sums over the box, or None when an
        increment lies outside it (hand-built tables keep the scan)."""
        sizes, strides = self._sizes, self._strides
        total = 1
        for size in sizes:
            total *= size
        placed: list[tuple[int, Fraction | int]] = []
        integral = True
        for offset, inc in self.increments.items():
            if len(offset) != len(sizes):
                return None
            idx = 0
            for o, size, stride in zip(offset, sizes, strides):
                if not 0 <= o < size:
                    return None
                idx += o * stride
            if isinstance(inc, Fraction):
                if inc.denominator == 1:
                    inc = inc.numerator
                else:
                    integral = False
            placed.append((idx, inc))
        # Integer increments (the common case: all four table kinds count
        # groups, memory ops or registers) accumulate as plain ints.
        cells: list = [0] * total if integral else [Fraction(0)] * total
        for idx, inc in placed:
            cells[idx] += inc
        # One accumulation pass per axis turns increments into inclusive
        # N-D prefix sums.
        for axis, size in enumerate(sizes):
            stride = strides[axis]
            block = stride * size
            for base in range(0, total, block):
                for off in range(stride, block):
                    cells[base + off] += cells[base + off - stride]
        return cells

    @staticmethod
    def from_counts(space: UnrollSpace,
                    count: Callable[[UnrollVector], Fraction | int],
                    prefix: bool = True) -> "OffsetTable":
        """Mobius inversion of ``count`` over the box: the increment at u'
        is the inclusion-exclusion difference over u's lower neighbours."""
        [table] = OffsetTable.from_counts_multi(
            space, lambda u: (count(u),), 1, prefix=prefix)
        return table

    @staticmethod
    def from_counts_multi(space: UnrollSpace,
                          count: Callable[[UnrollVector], tuple],
                          width: int,
                          prefix: bool = True) -> list["OffsetTable"]:
        """Mobius-invert a tuple-valued count into ``width`` tables.

        ``count`` is evaluated **once** per unroll point and each component
        of its result feeds one table -- this is how the RRS and register
        tables share a single stream-chain computation per point.
        """
        cache: dict[tuple[int, ...], tuple] = {}
        # The fast construction keeps counts in their native type (the
        # lattice counters all return ints) and lets box_sum normalize to
        # Fraction at the query boundary; the seed construction
        # (prefix=False) converts eagerly, exactly as the original did.
        zero = (0,) * width if prefix else (Fraction(0),) * width

        def counted(reduced: tuple[int, ...]) -> tuple:
            if any(c < 0 for c in reduced):
                return zero
            got = cache.get(reduced)
            if got is None:
                got = tuple(count(space.embed(reduced)))
                if not prefix:
                    got = tuple(Fraction(v) for v in got)
                cache[reduced] = got
            return got

        increments: list[dict[tuple[int, ...], Fraction]] = [
            {} for _ in range(width)]
        ndims = len(space.dims)
        corners = tuple(product((0, 1), repeat=ndims))
        for reduced in space.reduced_box():
            totals = [0] * width if prefix else [Fraction(0)] * width
            for signs in corners:
                neighbour = tuple(r - s for r, s in zip(reduced, signs))
                values = counted(neighbour)
                if sum(signs) % 2:
                    for i in range(width):
                        totals[i] -= values[i]
                else:
                    for i in range(width):
                        totals[i] += values[i]
            for i in range(width):
                increments[i][reduced] = totals[i]
        return [OffsetTable(space.dims, space.bounds, inc, prefix=prefix)
                for inc in increments]

    def box_sum(self, reduced: tuple[int, ...]) -> Fraction:
        """The paper's Sum (Figure 2): accumulate increments over u' <= u.

        O(1) against the prefix sums: coordinates clamp to the box (the
        increments live inside it) and any negative coordinate selects the
        empty box.
        """
        prefix = self._prefix
        if prefix is None or len(reduced) != len(self._sizes):
            return self.box_sum_scan(reduced)
        idx = 0
        for r, size, stride in zip(reduced, self._sizes, self._strides):
            if r < 0:
                return Fraction(0)
            if r >= size:
                r = size - 1
            idx += r * stride
        value = prefix[idx]
        return value if isinstance(value, Fraction) else int_fraction(value)

    def box_sum_scan(self, reduced: tuple[int, ...]) -> Fraction:
        """The seed O(|increments|) scan (reference for the parity tests)."""
        total = Fraction(0)
        for offset, inc in self.increments.items():
            if all(o <= r for o, r in zip(offset, reduced)):
                total += inc
        return total

@dataclass(frozen=True)
class UgsTables:
    """All four tables for one uniformly generated set."""

    ugs: UniformlyGeneratedSet
    base_cost: Fraction  # Equation-1 base factor (self reuse w.r.t. L)
    gts: OffsetTable
    gss: OffsetTable
    rrs: OffsetTable
    registers: OffsetTable

@dataclass(frozen=True)
class UnrollPoint:
    """Model quantities at one unroll vector."""

    u: UnrollVector
    flops: Fraction
    memory_ops: Fraction
    registers: Fraction
    gts: Fraction
    gss: Fraction
    cache_cost: Fraction  # main-memory accesses per unrolled iteration

class UnrollTables:
    """Precomputed model of a nest over an unroll space (section 4).

    Build once with :func:`build_tables`; every query is then a table
    lookup.  ``point(u)`` aggregates the per-UGS tables into the quantities
    the balance objective needs.
    """

    def __init__(self, nest: LoopNest, space: UnrollSpace, line_size: int,
                 trip: int, per_ugs: list[UgsTables], fast: bool = True):
        self.nest = nest
        self.space = space
        self.line_size = line_size
        self.trip = trip
        self.per_ugs = per_ugs
        self._base_flops = Fraction(nest.flops_per_iteration())
        self._points: dict[UnrollVector, UnrollPoint] = {}
        self._fast = fast
        self._aggregate: dict[str, OffsetTable] | None = None

    def _build_aggregate(self) -> dict[str, OffsetTable]:
        """Whole-nest tables: one summed-area table per model quantity.

        Box sums are linear in the increments, so summing the per-UGS
        increment tables (and folding each set's Equation-1 base factor
        into a combined cache-cost table) gives tables whose single O(1)
        box sum equals the per-UGS accumulation of :meth:`_compute_point`
        exactly -- point queries stop scaling with the number of UGSs.
        """
        line = Fraction(self.line_size)
        combined: dict[str, dict] = {key: {} for key in
                                     ("memory_ops", "registers", "gts",
                                      "gss", "cache_cost")}
        for entry in self.per_ugs:
            for key, table in (("memory_ops", entry.rrs),
                               ("registers", entry.registers),
                               ("gts", entry.gts), ("gss", entry.gss)):
                acc = combined[key]
                for offset, inc in table.increments.items():
                    acc[offset] = acc.get(offset, 0) + inc
            cache = combined["cache_cost"]
            gts_inc = entry.gts.increments
            gss_inc = entry.gss.increments
            for offset in gts_inc.keys() | gss_inc.keys():
                g_t = gts_inc.get(offset, 0)
                g_s = gss_inc.get(offset, 0)
                cache[offset] = cache.get(offset, 0) + \
                    entry.base_cost * (g_s + (g_t - g_s) / line)
        return {key: OffsetTable(self.space.dims, self.space.bounds, acc)
                for key, acc in combined.items()}

    def point(self, u: UnrollVector) -> UnrollPoint:
        if u not in self._points:
            self._points[u] = self._compute_point(u)
        return self._points[u]

    def _compute_point(self, u: UnrollVector) -> UnrollPoint:
        if not self.space.contains(u):
            raise ValueError(f"unroll vector {u} outside the table space")
        reduced = self.space.project(u)
        flops = self._base_flops * body_copies(u)
        if self._fast:
            agg = self._aggregate
            if agg is None:
                agg = self._aggregate = self._build_aggregate()
            return UnrollPoint(
                u, flops,
                agg["memory_ops"].box_sum(reduced),
                agg["registers"].box_sum(reduced),
                agg["gts"].box_sum(reduced),
                agg["gss"].box_sum(reduced),
                agg["cache_cost"].box_sum(reduced))
        memory_ops = Fraction(0)
        registers = Fraction(0)
        gts_total = Fraction(0)
        gss_total = Fraction(0)
        cache_cost = Fraction(0)
        line = Fraction(self.line_size)
        for entry in self.per_ugs:
            g_t = entry.gts.box_sum(reduced)
            g_s = entry.gss.box_sum(reduced)
            memory_ops += entry.rrs.box_sum(reduced)
            registers += entry.registers.box_sum(reduced)
            gts_total += g_t
            gss_total += g_s
            cache_cost += entry.base_cost * (g_s + (g_t - g_s) / line)
        return UnrollPoint(u, flops, memory_ops, registers, gts_total,
                           gss_total, cache_cost)

    def all_points(self) -> list[UnrollPoint]:
        return [self.point(u) for u in self.space]

def _equation1_base(ugs: UniformlyGeneratedSet, localized: VectorSpace,
                    line_size: int, trip: int) -> Fraction:
    k = localized_temporal_dim(ugs.matrix, localized)
    if k > 0:
        return Fraction(1, trip ** k)
    if has_self_spatial(ugs.matrix, localized):
        return Fraction(1, line_size)
    return Fraction(1)

def build_tables(nest: LoopNest, space: UnrollSpace, line_size: int = 4,
                 trip: int = 100,
                 localized: VectorSpace | None = None,
                 ugs: list[UniformlyGeneratedSet] | None = None,
                 fast: bool = True, ugs_cache=None) -> UnrollTables:
    """Build the GTS/GSS/RRS/RL tables for every UGS of ``nest``.

    ``localized`` is the cache-localized space (default: innermost loop).
    Register analysis always uses the innermost loop, per section 4.3.
    ``ugs`` optionally supplies the precomputed UGS partition (the engine
    reuses the one from its analysis artifacts).  ``fast=False`` runs the
    seed construction -- separate stream-chain evaluations per table and
    scan-only box sums -- kept for the parity suite and the cold-analysis
    benchmark's seed measurement.

    ``ugs_cache`` (a :class:`repro.engine.ugscache.UgsTableCache`, or any
    object with the same ``key_for``/``fetch``/``store`` surface)
    memoizes per-set tables under their canonical signature, so sets seen
    in *any* previously built nest are served in O(1).  Consulted only on
    the fast path -- seed-mode builds (``fast=False`` or inside
    :func:`repro.fastpath.seed_algorithms`) always recompute.
    """
    localized = localized if localized is not None else innermost_localized_space(nest)
    inner = VectorSpace.spanned_by_axes([nest.depth - 1], nest.depth)
    sets = partition_ugs(nest) if ugs is None else ugs
    use_cache = ugs_cache is not None and fast and fast_enabled()
    per_ugs: list[UgsTables] = []
    for group in sets:
        if use_cache:
            cache_key = ugs_cache.key_for(group, space, localized,
                                          line_size, trip)
            cached = ugs_cache.fetch(cache_key, group)
            if cached is not None:
                per_ugs.append(cached)
                continue
        base = _equation1_base(group, localized, line_size, trip)
        gts = None  # built jointly with the stream tables when shareable
        if is_analyzable(group):
            merges_t = pairwise_merges(group, space.dims, localized,
                                       spatial=False)
            relations_s = spatial_relations(group, space.dims, localized)
            # Register analysis localizes to the innermost loop; when the
            # cache-localized space *is* the innermost loop (the default),
            # the merge enumeration is argument-identical and shared.
            if fast and localized == inner:
                merges_r = merges_t
            else:
                merges_r = pairwise_merges(group, space.dims, inner,
                                           spatial=False)

            def count_gts(u, _ugs=group, _m=merges_t):
                return group_count(_ugs, u, space.dims, localized,
                                   spatial=False, merges=_m)

            def count_gss(u, _ugs=group, _r=relations_s):
                return group_count_spatial(_ugs, u, space.dims, localized,
                                           line_size, relations=_r)

            if fast:
                used = used_dims(group.matrix, space.dims, spatial=False)
                count_gss = _projected_count(count_gss, space.dims, used)
                read_only = not any(m.is_write for m in group.members)
                if merges_r is merges_t:
                    # GTS and the stream forest union the same merges over
                    # the same lattice: one union-find per point yields the
                    # group count, the memory ops and the register count.
                    def count_joint(u, _ugs=group, _m=merges_t):
                        summary, groups = stream_chains_with_groups(
                            _ugs, u, space.dims, merges=_m)
                        return (groups, summary.memory_ops,
                                summary.registers)

                    if read_only:
                        # Read-only sets: copies along unsubscripted dims
                        # are textually identical loads that never split a
                        # chain, so the summary is constant along them too.
                        count_joint = _projected_count(count_joint,
                                                       space.dims, used)
                    gts, rrs, registers = OffsetTable.from_counts_multi(
                        space, count_joint, 3)
                else:
                    def count_streams(u, _ugs=group, _m=merges_r):
                        summary = stream_chains(_ugs, u, space.dims,
                                                merges=_m)
                        return (summary.memory_ops, summary.registers)

                    count_gts = _projected_count(count_gts, space.dims,
                                                 used)
                    if read_only:
                        count_streams = _projected_count(count_streams,
                                                         space.dims, used)
                    gts = OffsetTable.from_counts(space, count_gts)
                    rrs, registers = OffsetTable.from_counts_multi(
                        space, count_streams, 2)
            else:
                def count_rrs(u, _ugs=group, _m=merges_r):
                    return stream_chains(_ugs, u, space.dims,
                                         merges=_m).memory_ops

                def count_reg(u, _ugs=group, _m=merges_r):
                    return stream_chains(_ugs, u, space.dims,
                                         merges=_m).registers

                rrs = OffsetTable.from_counts(space, count_rrs, prefix=False)
                registers = OffsetTable.from_counts(space, count_reg,
                                                    prefix=False)
        else:
            def count_gts(u, _ugs=group):
                return conservative_group_count(_ugs, u, space.dims)

            def count_gss(u, _ugs=group):
                return conservative_group_count(_ugs, u, space.dims,
                                                spatial=True)

            if fast:
                def count_streams(u, _ugs=group):
                    summary = conservative_chains(_ugs, u, space.dims)
                    return (summary.memory_ops, summary.registers)

                count_gts = _projected_count(
                    count_gts, space.dims,
                    used_dims(group.matrix, space.dims, spatial=False))
                count_gss = _projected_count(
                    count_gss, space.dims,
                    used_dims(group.matrix, space.dims, spatial=True))
                rrs, registers = OffsetTable.from_counts_multi(
                    space, count_streams, 2)
            else:
                def count_rrs(u, _ugs=group):
                    return conservative_chains(_ugs, u, space.dims).memory_ops

                def count_reg(u, _ugs=group):
                    return conservative_chains(_ugs, u, space.dims).registers

                rrs = OffsetTable.from_counts(space, count_rrs, prefix=False)
                registers = OffsetTable.from_counts(space, count_reg,
                                                    prefix=False)

        if gts is None:
            gts = OffsetTable.from_counts(space, count_gts, prefix=fast)
        entry = UgsTables(
            ugs=group,
            base_cost=base,
            gts=gts,
            gss=OffsetTable.from_counts(space, count_gss, prefix=fast),
            rrs=rrs,
            registers=registers,
        )
        if use_cache:
            ugs_cache.store(cache_key, entry)
        per_ugs.append(entry)
    return UnrollTables(nest, space, line_size, trip, per_ugs, fast=fast)
