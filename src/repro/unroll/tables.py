"""The precomputed unroll tables (Figures 2, 3, 5 and 7 of the paper).

For every quantity the paper tabulates -- group-temporal sets, group-spatial
sets, register-reuse sets and register pressure -- we store a table of
*per-offset increments* T[u'] whose box sum over ``u' <= u`` yields the
value at unroll vector u (the paper's ``Sum`` function, Figure 2).  The
increments are obtained by Mobius inversion of the exact lattice counts of
:mod:`repro.unroll.streams`; the box-sum identity is exact by construction
and cross-checked against the brute-force baseline in the test suite.

Once built, answering "what are M, R, g_T, g_S at unroll u?" costs a table
lookup -- no unrolled data structure is ever materialized, which is the
efficiency claim against Wolf, Maydan & Chen's approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Callable

from repro.ir.nodes import LoopNest
from repro.linalg import VectorSpace
from repro.reuse.locality import innermost_localized_space
from repro.reuse.selfreuse import has_self_spatial, localized_temporal_dim
from repro.reuse.ugs import UniformlyGeneratedSet, partition_ugs
from repro.unroll.space import UnrollSpace, UnrollVector, body_copies
from repro.unroll.streams import (
    conservative_chains,
    conservative_group_count,
    group_count,
    group_count_spatial,
    is_analyzable,
    pairwise_merges,
    spatial_relations,
    stream_chains,
)

class OffsetTable:
    """Per-offset increments over the unroll box, queried by box sum.

    ``table[u'] = T(u')`` such that ``sum(T(u') for u' <= u) = count(u)``;
    entries may be negative (merges remove groups).
    """

    def __init__(self, dims: tuple[int, ...], bounds: tuple[int, ...],
                 increments: dict[tuple[int, ...], Fraction]):
        self.dims = dims
        self.bounds = bounds
        self.increments = increments

    @staticmethod
    def from_counts(space: UnrollSpace,
                    count: Callable[[UnrollVector], Fraction | int]) -> "OffsetTable":
        """Mobius inversion of ``count`` over the box: the increment at u'
        is the inclusion-exclusion difference over u's lower neighbours."""
        cache: dict[tuple[int, ...], Fraction] = {}

        def counted(reduced: tuple[int, ...]) -> Fraction:
            if any(c < 0 for c in reduced):
                return Fraction(0)
            if reduced not in cache:
                cache[reduced] = Fraction(count(space.embed(reduced)))
            return cache[reduced]

        increments: dict[tuple[int, ...], Fraction] = {}
        ndims = len(space.dims)
        for reduced in product(*(range(b + 1) for b in space.bounds)):
            total = Fraction(0)
            for signs in product((0, 1), repeat=ndims):
                neighbour = tuple(r - s for r, s in zip(reduced, signs))
                parity = -1 if sum(signs) % 2 else 1
                total += parity * counted(neighbour)
            increments[reduced] = total
        return OffsetTable(space.dims, space.bounds, increments)

    def box_sum(self, reduced: tuple[int, ...]) -> Fraction:
        """The paper's Sum (Figure 2): accumulate increments over u' <= u."""
        total = Fraction(0)
        for offset, inc in self.increments.items():
            if all(o <= r for o, r in zip(offset, reduced)):
                total += inc
        return total

@dataclass(frozen=True)
class UgsTables:
    """All four tables for one uniformly generated set."""

    ugs: UniformlyGeneratedSet
    base_cost: Fraction  # Equation-1 base factor (self reuse w.r.t. L)
    gts: OffsetTable
    gss: OffsetTable
    rrs: OffsetTable
    registers: OffsetTable

@dataclass(frozen=True)
class UnrollPoint:
    """Model quantities at one unroll vector."""

    u: UnrollVector
    flops: Fraction
    memory_ops: Fraction
    registers: Fraction
    gts: Fraction
    gss: Fraction
    cache_cost: Fraction  # main-memory accesses per unrolled iteration

class UnrollTables:
    """Precomputed model of a nest over an unroll space (section 4).

    Build once with :func:`build_tables`; every query is then a table
    lookup.  ``point(u)`` aggregates the per-UGS tables into the quantities
    the balance objective needs.
    """

    def __init__(self, nest: LoopNest, space: UnrollSpace, line_size: int,
                 trip: int, per_ugs: list[UgsTables]):
        self.nest = nest
        self.space = space
        self.line_size = line_size
        self.trip = trip
        self.per_ugs = per_ugs
        self._base_flops = Fraction(nest.flops_per_iteration())
        self._points: dict[UnrollVector, UnrollPoint] = {}

    def point(self, u: UnrollVector) -> UnrollPoint:
        if u not in self._points:
            self._points[u] = self._compute_point(u)
        return self._points[u]

    def _compute_point(self, u: UnrollVector) -> UnrollPoint:
        if not self.space.contains(u):
            raise ValueError(f"unroll vector {u} outside the table space")
        reduced = self.space.project(u)
        flops = self._base_flops * body_copies(u)
        memory_ops = Fraction(0)
        registers = Fraction(0)
        gts_total = Fraction(0)
        gss_total = Fraction(0)
        cache_cost = Fraction(0)
        line = Fraction(self.line_size)
        for entry in self.per_ugs:
            g_t = entry.gts.box_sum(reduced)
            g_s = entry.gss.box_sum(reduced)
            memory_ops += entry.rrs.box_sum(reduced)
            registers += entry.registers.box_sum(reduced)
            gts_total += g_t
            gss_total += g_s
            cache_cost += entry.base_cost * (g_s + (g_t - g_s) / line)
        return UnrollPoint(u, flops, memory_ops, registers, gts_total,
                           gss_total, cache_cost)

    def all_points(self) -> list[UnrollPoint]:
        return [self.point(u) for u in self.space]

def _equation1_base(ugs: UniformlyGeneratedSet, localized: VectorSpace,
                    line_size: int, trip: int) -> Fraction:
    k = localized_temporal_dim(ugs.matrix, localized)
    if k > 0:
        return Fraction(1, trip ** k)
    if has_self_spatial(ugs.matrix, localized):
        return Fraction(1, line_size)
    return Fraction(1)

def build_tables(nest: LoopNest, space: UnrollSpace, line_size: int = 4,
                 trip: int = 100,
                 localized: VectorSpace | None = None) -> UnrollTables:
    """Build the GTS/GSS/RRS/RL tables for every UGS of ``nest``.

    ``localized`` is the cache-localized space (default: innermost loop).
    Register analysis always uses the innermost loop, per section 4.3.
    """
    localized = localized if localized is not None else innermost_localized_space(nest)
    inner = VectorSpace.spanned_by_axes([nest.depth - 1], nest.depth)
    per_ugs: list[UgsTables] = []
    for ugs in partition_ugs(nest):
        base = _equation1_base(ugs, localized, line_size, trip)
        if is_analyzable(ugs):
            merges_t = pairwise_merges(ugs, space.dims, localized,
                                       spatial=False)
            relations_s = spatial_relations(ugs, space.dims, localized)
            merges_r = pairwise_merges(ugs, space.dims, inner, spatial=False)

            def count_gts(u, _ugs=ugs, _m=merges_t):
                return group_count(_ugs, u, space.dims, localized,
                                   spatial=False, merges=_m)

            def count_gss(u, _ugs=ugs, _r=relations_s):
                return group_count_spatial(_ugs, u, space.dims, localized,
                                           line_size, relations=_r)

            def count_rrs(u, _ugs=ugs, _m=merges_r):
                return stream_chains(_ugs, u, space.dims, merges=_m).memory_ops

            def count_reg(u, _ugs=ugs, _m=merges_r):
                return stream_chains(_ugs, u, space.dims, merges=_m).registers
        else:
            def count_gts(u, _ugs=ugs):
                return conservative_group_count(_ugs, u, space.dims)

            def count_gss(u, _ugs=ugs):
                return conservative_group_count(_ugs, u, space.dims,
                                                spatial=True)

            def count_rrs(u, _ugs=ugs):
                return conservative_chains(_ugs, u, space.dims).memory_ops

            def count_reg(u, _ugs=ugs):
                return conservative_chains(_ugs, u, space.dims).registers

        per_ugs.append(UgsTables(
            ugs=ugs,
            base_cost=base,
            gts=OffsetTable.from_counts(space, count_gts),
            gss=OffsetTable.from_counts(space, count_gss),
            rrs=OffsetTable.from_counts(space, count_rrs),
            registers=OffsetTable.from_counts(space, count_reg),
        ))
    return UnrollTables(nest, space, line_size, trip, per_ugs)
