"""Scalar-replacement code generation (Callahan-Carr-Kennedy).

Where :mod:`repro.unroll.scalar_replacement` *plans* which references stay
in registers, this module performs the rewrite: reused array values move
into scalar temporaries that rotate across innermost iterations, with
preloads before the innermost loop and store-backs after it.  The result
is executable (see :func:`run_scalar_replaced`) and property-tested to be
semantics-preserving, which pins down the meaning of every count the
tables predict.

Shape of the generated code for a chain  A(I) / A(I-2)  (span 2)::

    DO J ...
      A_t1 = A(lo-1)            ! prologue preloads
      A_t2 = A(lo-2)
      DO I = lo, hi
        A_t0 = A(I)             ! head load (the one memory op)
        ... uses read A_t0 / A_t2 ...
        A_t2 = A_t1             ! rotation
        A_t1 = A_t0
      ENDDO
    ENDDO

Innermost-invariant chains hoist the load above the inner loop and sink
the store below it (one register, zero per-iteration memory operations).

Safety: the rewrite refuses arrays whose references split into several
uniformly generated sets when any of them writes -- differently-shaped
subscripts to one array may alias, and the reuse model does not see it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, MutableMapping

import numpy as np

from repro.ir.interp import InterpreterError, _eval_expr, _exec_statement
from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    Bound,
    Call,
    Const,
    Expr,
    Loop,
    LoopNest,
    ScalarVar,
    Statement,
    Subscript,
)
from repro.reuse.ugs import partition_ugs
from repro.unroll.streams import Chain, is_analyzable, stream_chains

class ScalarReplacementError(ValueError):
    """The nest cannot be safely scalar-replaced."""

@dataclass(frozen=True)
class ScalarReplacedNest:
    """The rewritten loop: outer loops, per-outer-iteration prologue, the
    innermost loop with a rewritten body plus rotation statements, and an
    epilogue of sunk stores."""

    original: LoopNest
    outer_loops: tuple[Loop, ...]
    prologue: tuple[Statement, ...]
    inner_loop: Loop
    body: tuple[Statement, ...]
    rotations: tuple[Statement, ...]
    epilogue: tuple[Statement, ...]
    temporaries: tuple[str, ...]

    @property
    def memory_ops_per_iteration(self) -> int:
        """Array references left inside the innermost body."""
        count = 0
        for stmt in self.body:
            count += len(stmt.array_reads()) + len(stmt.array_writes())
        return count

def _substitute_inner(sub: Subscript, inner: str, value: Bound,
                      shift: int) -> Subscript:
    """Replace the innermost index by ``value + shift`` in a subscript."""
    coef = sub.coeff(inner)
    if coef == 0:
        return sub.shifted({})
    remaining = tuple((n, c) for n, c in sub.loop_coeffs if n != inner)
    params = dict(sub.param_coeffs)
    for name, pcoef in value.param_coeffs:
        params[name] = params.get(name, 0) + coef * pcoef
    const = sub.const + coef * (value.const + shift)
    return Subscript(remaining,
                     tuple(sorted((k, v) for k, v in params.items() if v)),
                     const)

def _ref_at_inner(ref: ArrayRef, inner: str, lower: Bound,
                  shift: int) -> ArrayRef:
    return ArrayRef(ref.array,
                    tuple(_substitute_inner(s, inner, lower, shift)
                          for s in ref.subscripts))

class _Rewriter:
    """Replaces planned array references with temporaries inside
    expressions."""

    def __init__(self, replacements: dict[int, str], sunk: set[int]):
        self.replacements = replacements
        self.sunk = sunk  # def positions whose store is sunk below the loop
        self._cursor = 0

    def rewrite_statement(self, stmt: Statement) -> tuple[str | None, Statement]:
        """Rewrite one statement; returns (temp needing a store-through,
        rewritten statement)."""
        rhs = self._rewrite(stmt.rhs)
        if isinstance(stmt.lhs, ArrayRef):
            position = self._cursor
            temp = self.replacements.get(position)
            self._cursor += 1
            if temp is not None:
                store_through = temp if position not in self.sunk else None
                return store_through, Statement(ScalarVar(temp), rhs)
        return None, Statement(stmt.lhs, rhs)

    def _rewrite(self, expr: Expr) -> Expr:
        if isinstance(expr, ArrayRef):
            temp = self.replacements.get(self._cursor)
            self._cursor += 1
            if temp is not None:
                return ScalarVar(temp)
            return expr
        if isinstance(expr, BinOp):
            left = self._rewrite(expr.left)
            right = self._rewrite(expr.right)
            return BinOp(expr.op, left, right)
        if isinstance(expr, Call):
            return Call(expr.func, tuple(self._rewrite(a) for a in expr.args))
        return expr

def _check_aliasing(nest: LoopNest) -> None:
    sets_by_array: dict[str, list] = {}
    for ugs in partition_ugs(nest):
        sets_by_array.setdefault(ugs.array, []).append(ugs)
    for array, sets in sets_by_array.items():
        if len(sets) > 1 and any(m.is_write for s in sets for m in s.members):
            raise ScalarReplacementError(
                f"array {array} is referenced through {len(sets)} different "
                "subscript shapes including writes; possible aliasing")

def scalar_replace(nest: LoopNest) -> ScalarReplacedNest:
    """Rewrite ``nest`` so reused array values live in rotating scalars.

    Raises :class:`ScalarReplacementError` for nests outside the model
    (potential aliasing between differently-shaped references).
    """
    _check_aliasing(nest)
    inner = nest.loops[-1]
    zero = tuple(0 for _ in range(nest.depth))

    replacements: dict[int, str] = {}
    sunk_defs: set[int] = set()
    prologue: list[Statement] = []
    head_loads: dict[int, list[Statement]] = {}  # stmt index -> loads
    rotations: list[Statement] = []
    epilogue: list[Statement] = []
    temporaries: list[str] = []
    temp_serial = 0

    for ugs in partition_ugs(nest):
        if not is_analyzable(ugs):
            continue
        summary = stream_chains(ugs, zero, dims=())
        for chain in summary.chains:
            members = [ugs.members[idx] for idx, _ in chain.nodes]
            if chain.hoisted:
                temp = f"{ugs.array.lower()}_h{temp_serial}"
                temp_serial += 1
                temporaries.append(temp)
                by_position = sorted(members, key=lambda m: m.position)
                for member in by_position:
                    replacements[member.position] = temp
                    if member.is_write:
                        sunk_defs.add(member.position)
                if not by_position[0].is_write:
                    prologue.append(Statement(ScalarVar(temp),
                                              by_position[0].ref))
                if any(m.is_write for m in by_position):
                    store_ref = next(m.ref for m in by_position if m.is_write)
                    epilogue.append(Statement(store_ref, ScalarVar(temp)))
                continue

            depth = int(chain.span)
            if depth == 0 and len(members) == 1:
                continue  # nothing to reuse; leave the reference alone

            base = f"{ugs.array.lower()}_t{temp_serial}"
            temp_serial += 1
            temps = [f"{base}_{k}" for k in range(depth + 1)]
            temporaries.extend(temps)
            head = members[0]
            for member, time in zip(members, chain.times):
                replacements[member.position] = temps[int(time)]
            if head.is_write:
                # The def statement keeps its store (store-through) and
                # captures the value in t0; handled via replacements plus
                # an explicit store appended by the body rewrite below.
                pass
            else:
                head_loads.setdefault(head.stmt_index, []).append(
                    Statement(ScalarVar(temps[0]), head.ref))
            # Preload t_1..t_d with what the head touched 1..d iterations
            # before the first one.
            for k in range(1, depth + 1):
                preload_ref = _ref_at_inner(head.ref, inner.index,
                                            inner.lower, -k)
                prologue.append(Statement(ScalarVar(temps[k]), preload_ref))
            for k in range(depth, 0, -1):
                rotations.append(Statement(ScalarVar(temps[k]),
                                           ScalarVar(temps[k - 1])))

    rewriter = _Rewriter(replacements, sunk_defs)
    body: list[Statement] = []
    for stmt_index, stmt in enumerate(nest.body):
        body.extend(head_loads.get(stmt_index, ()))
        replaced_def, rewritten = rewriter.rewrite_statement(stmt)
        body.append(rewritten)
        if replaced_def is not None:
            # store-through: the def's value also goes to memory
            assert isinstance(stmt.lhs, ArrayRef)
            body.append(Statement(stmt.lhs, ScalarVar(replaced_def)))

    return ScalarReplacedNest(
        original=nest,
        outer_loops=nest.loops[:-1],
        prologue=tuple(prologue),
        inner_loop=inner,
        body=tuple(body),
        rotations=tuple(rotations),
        epilogue=tuple(epilogue),
        temporaries=tuple(temporaries),
    )

def run_scalar_replaced(sr: ScalarReplacedNest, bindings: Mapping[str, int],
                        arrays: Mapping[str, np.ndarray],
                        scalars: MutableMapping[str, float] | None = None) -> None:
    """Execute the scalar-replaced loop on numpy arrays."""
    scalars = scalars if scalars is not None else {}
    env: dict[str, int] = dict(bindings)

    def run_inner() -> None:
        for stmt in sr.prologue:
            _exec_statement(stmt, env, scalars, arrays, None)
        lo = sr.inner_loop.lower.evaluate(env)
        hi = sr.inner_loop.upper.evaluate(env)
        for value in range(lo, hi + 1, sr.inner_loop.step):
            env[sr.inner_loop.index] = value
            for stmt in sr.body:
                _exec_statement(stmt, env, scalars, arrays, None)
            for stmt in sr.rotations:
                _exec_statement(stmt, env, scalars, arrays, None)
        env.pop(sr.inner_loop.index, None)
        for stmt in sr.epilogue:
            _exec_statement(stmt, env, scalars, arrays, None)

    def rec(level: int) -> None:
        if level == len(sr.outer_loops):
            run_inner()
            return
        loop = sr.outer_loops[level]
        lo = loop.lower.evaluate(env)
        hi = loop.upper.evaluate(env)
        for value in range(lo, hi + 1, loop.step):
            env[loop.index] = value
            rec(level + 1)
        env.pop(loop.index, None)

    rec(0)

def format_scalar_replaced(sr: ScalarReplacedNest) -> str:
    """Fortran-style rendering of the rewritten loop."""
    from repro.ir.printer import format_expr, format_loop_header

    lines = []
    indent = ""
    for loop in sr.outer_loops:
        lines.append(format_loop_header(loop, indent))
        indent += "  "

    def emit(stmt: Statement, ind: str) -> None:
        lhs = stmt.lhs.pretty() if isinstance(stmt.lhs, ArrayRef) else stmt.lhs.name
        lines.append(f"{ind}{lhs} = {format_expr(stmt.rhs)}")

    for stmt in sr.prologue:
        emit(stmt, indent)
    lines.append(format_loop_header(sr.inner_loop, indent))
    for stmt in sr.body:
        emit(stmt, indent + "  ")
    for stmt in sr.rotations:
        emit(stmt, indent + "  ")
    lines.append(f"{indent}ENDDO")
    for stmt in sr.epilogue:
        emit(stmt, indent)
    for _ in sr.outer_loops:
        indent = indent[:-2]
        lines.append(f"{indent}ENDDO")
    return "\n".join(lines)
