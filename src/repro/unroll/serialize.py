"""JSON persistence for the unroll tables.

A production compiler would compute the tables once per nest and reuse
them across compilation phases (or cache them between builds); this module
serializes an :class:`repro.unroll.tables.UnrollTables` to JSON and back.
Fractions are stored exactly as ``"p/q"`` strings; the nest itself is
stored as its printer text and re-parsed on load, so a round-tripped table
is usable standalone.
"""

from __future__ import annotations

import json
from fractions import Fraction

from repro.ir.parser import parse_nest
from repro.ir.printer import format_nest
from repro.linalg import VectorSpace
from repro.reuse.locality import innermost_localized_space
from repro.reuse.ugs import partition_ugs
from repro.unroll.space import UnrollSpace
from repro.unroll.tables import OffsetTable, UgsTables, UnrollTables

class SerializationError(ValueError):
    """Malformed table JSON."""

def _frac_to_str(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"

def _frac_from_str(text: str) -> Fraction:
    num, _, den = text.partition("/")
    return Fraction(int(num), int(den or 1))

def _offset_table_to_dict(table: OffsetTable) -> dict:
    return {
        "dims": list(table.dims),
        "bounds": list(table.bounds),
        "entries": [
            {"offset": list(offset), "value": _frac_to_str(Fraction(value))}
            for offset, value in sorted(table.increments.items())],
    }

def _offset_table_from_dict(data: dict) -> OffsetTable:
    increments = {tuple(entry["offset"]): _frac_from_str(entry["value"])
                  for entry in data["entries"]}
    return OffsetTable(tuple(data["dims"]), tuple(data["bounds"]),
                       increments)

def tables_to_json(tables: UnrollTables) -> str:
    """Serialize tables (and the nest they describe) to a JSON string."""
    payload = {
        "format": "repro-unroll-tables-v1",
        "nest": format_nest(tables.nest),
        "nest_name": tables.nest.name,
        "line_size": tables.line_size,
        "trip": tables.trip,
        "space": {"depth": tables.space.depth,
                  "dims": list(tables.space.dims),
                  "bounds": list(tables.space.bounds)},
        "ugs": [
            {
                "array": entry.ugs.array,
                "members": [m.position for m in entry.ugs.members],
                "base_cost": _frac_to_str(entry.base_cost),
                "gts": _offset_table_to_dict(entry.gts),
                "gss": _offset_table_to_dict(entry.gss),
                "rrs": _offset_table_to_dict(entry.rrs),
                "registers": _offset_table_to_dict(entry.registers),
            }
            for entry in tables.per_ugs],
    }
    return json.dumps(payload, indent=2)

def ugs_tables_to_json(entry: UgsTables) -> str:
    """Serialize one set's tables *without* its nest or UGS identity.

    The cross-nest UGS cache (:mod:`repro.engine.ugscache`) stores
    entries under a canonical signature that already pins down everything
    numeric; the UGS itself is rebound by the reader, so the payload is
    pure tables.  Compact separators: these blobs ride the shared mmap
    segment, where size is capacity.
    """
    payload = {
        "format": "repro-ugs-tables-v1",
        "base_cost": _frac_to_str(entry.base_cost),
        "gts": _offset_table_to_dict(entry.gts),
        "gss": _offset_table_to_dict(entry.gss),
        "rrs": _offset_table_to_dict(entry.rrs),
        "registers": _offset_table_to_dict(entry.registers),
    }
    return json.dumps(payload, separators=(",", ":"))

def ugs_tables_from_json(text: str, ugs) -> UgsTables:
    """Reconstruct one set's tables from :func:`ugs_tables_to_json`,
    bound to the caller's ``ugs`` (a
    :class:`~repro.reuse.ugs.UniformlyGeneratedSet` whose signature
    matched the entry's key)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as err:
        raise SerializationError(f"not JSON: {err}") from None
    if payload.get("format") != "repro-ugs-tables-v1":
        raise SerializationError("unknown UGS table format")
    try:
        return UgsTables(
            ugs=ugs,
            base_cost=_frac_from_str(payload["base_cost"]),
            gts=_offset_table_from_dict(payload["gts"]),
            gss=_offset_table_from_dict(payload["gss"]),
            rrs=_offset_table_from_dict(payload["rrs"]),
            registers=_offset_table_from_dict(payload["registers"]),
        )
    except (KeyError, TypeError, ValueError) as err:
        raise SerializationError(f"malformed UGS tables: {err}") from None

def tables_from_json(text: str) -> UnrollTables:
    """Reconstruct tables from :func:`tables_to_json` output.

    The nest is re-parsed from its printed form and its UGS partition
    recomputed (deterministic), then matched to the serialized per-UGS
    tables by array name and member positions.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as err:
        raise SerializationError(f"not JSON: {err}") from None
    if payload.get("format") != "repro-unroll-tables-v1":
        raise SerializationError("unknown table format")

    nest = parse_nest(payload["nest"], name=payload["nest_name"])
    space = UnrollSpace(payload["space"]["depth"],
                        tuple(payload["space"]["dims"]),
                        tuple(payload["space"]["bounds"]))
    by_key = {(entry["array"], tuple(entry["members"])): entry
              for entry in payload["ugs"]}
    per_ugs = []
    for ugs in partition_ugs(nest):
        key = (ugs.array, tuple(m.position for m in ugs.members))
        entry = by_key.get(key)
        if entry is None:
            raise SerializationError(
                f"serialized tables lack UGS {key} of nest "
                f"{payload['nest_name']}")
        per_ugs.append(UgsTables(
            ugs=ugs,
            base_cost=_frac_from_str(entry["base_cost"]),
            gts=_offset_table_from_dict(entry["gts"]),
            gss=_offset_table_from_dict(entry["gss"]),
            rrs=_offset_table_from_dict(entry["rrs"]),
            registers=_offset_table_from_dict(entry["registers"]),
        ))
    return UnrollTables(nest, space, payload["line_size"], payload["trip"],
                        per_ugs)
