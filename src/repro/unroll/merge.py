"""The merge-point solver (heart of section 4.2).

Copies of two references r_s, r_t of one UGS (constants c_s, c_t) land in
the same reuse group after unroll-and-jam exactly when the copy-offset
difference k solves

    H k  ≡  c_t - c_s   (mod H·L)

with k supported on the unrolled dimensions and the residual motion lying
in the localized space L (for registers and temporal cache reuse: the
innermost loop).  Under the paper's SIV + separability restriction the
solution is unique when it exists; we solve the stacked system

    [ H e_d1 | H e_d2 | ... | H b_1 | H b_2 | ... ] [k ; l] = Δc

exactly over Q and demand integrality of the copy-offset part.

The returned :class:`MergeSolution` carries the signed offset difference
(the paper's r-hat) and the residual distance along the innermost loop,
which the register model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.linalg import Matrix, VectorSpace

@dataclass(frozen=True)
class MergeSolution:
    """Solution of one merge equation.

    ``offset`` is the signed copy-offset difference over the unrolled
    dimensions (reduced coordinates, aligned with the ``dims`` argument).
    ``inner_distance`` is the residual reuse distance along the localized
    (innermost) direction, in iterations; positive means the second
    (lexicographically greater) reference touches a location that many
    innermost iterations *before* the first one does... concretely it is
    the coefficient of the innermost basis vector of L in the witness.
    ``spatial_residual`` is the leftover first-dimension distance for
    spatial merges (0 for temporal merges).
    """

    offset: tuple[int, ...]
    inner_distance: Fraction
    spatial_residual: Fraction = Fraction(0)

def solve_merge(matrix: Matrix, delta: tuple[int, ...],
                dims: tuple[int, ...], localized: VectorSpace,
                spatial: bool = False,
                line_size: int | None = None) -> MergeSolution | None:
    """Solve ``H k = delta (mod H L)`` for the copy offset k.

    ``matrix`` is the UGS subscript matrix H; ``delta`` the constant-vector
    difference c_t - c_s; ``dims`` the unrolled loop levels.  With
    ``spatial=True`` the first array dimension is dropped (H_S) and
    ``line_size`` caps the residual contiguous-dimension distance.

    Returns None when no (unique, integral) merge offset exists.  Offsets
    may be negative: copies merge when their offset difference matches,
    whichever side is ahead.
    """
    work = matrix.with_zero_row(0) if spatial else matrix
    rhs = list(delta)
    if spatial:
        rhs[0] = 0

    depth = matrix.ncols
    columns: list[tuple[Fraction, ...]] = []
    col_kind: list[tuple[str, int]] = []  # ("k", reduced index) or ("l", basis index)
    for reduced_idx, dim in enumerate(dims):
        unit = [Fraction(0)] * depth
        unit[dim] = Fraction(1)
        col = work.matvec(unit)
        if any(x != 0 for x in col):
            columns.append(col)
            col_kind.append(("k", reduced_idx))
    basis = localized.basis
    for basis_idx, vec in enumerate(basis):
        col = work.matvec(vec)
        if any(x != 0 for x in col):
            columns.append(col)
            col_kind.append(("l", basis_idx))

    if not columns:
        if all(x == 0 for x in rhs):
            return _result(dims, {}, {}, basis, matrix, delta, spatial, line_size)
        return None

    system = Matrix.from_columns(columns, nrows=depth)
    sol = system.solve(rhs)
    if not sol:
        return None
    if sol.homogeneous:
        # An ambiguous system mixes unrolled and localized directions; the
        # SIV + separability restriction rules this out, and we refuse to
        # guess outside it unless the freedom stays within the localized
        # part (then any representative works).
        for hvec in sol.homogeneous:
            for coord, (kind, _) in zip(hvec, col_kind):
                if kind == "k" and coord != 0:
                    return None

    k_parts = {idx: val for val, (kind, idx) in zip(sol.particular, col_kind)
               if kind == "k"}
    l_parts = {idx: val for val, (kind, idx) in zip(sol.particular, col_kind)
               if kind == "l"}
    if any(val.denominator != 1 for val in k_parts.values()):
        return None
    return _result(dims, k_parts, l_parts, basis, matrix, delta, spatial,
                   line_size)

def _result(dims: tuple[int, ...], k_parts: dict[int, Fraction],
            l_parts: dict[int, Fraction], basis, matrix: Matrix,
            delta: tuple[int, ...], spatial: bool,
            line_size: int | None) -> MergeSolution | None:
    offset = tuple(int(k_parts.get(i, 0)) for i in range(len(dims)))

    depth = matrix.ncols
    inner = Fraction(0)
    witness = [Fraction(0)] * depth
    for idx, coef in l_parts.items():
        for pos, component in enumerate(basis[idx]):
            witness[pos] += coef * component
    inner = witness[depth - 1]

    residual = Fraction(0)
    if spatial:
        # Distance along the contiguous dimension left after the witness
        # motion: |Δc_0 - (H (k + l))_0|.
        moved = [Fraction(0)] * depth
        for i, dim in enumerate(dims):
            moved[dim] += Fraction(offset[i])
        for pos in range(depth):
            moved[pos] += witness[pos]
        first = matrix.matvec(moved)[0]
        residual = abs(Fraction(delta[0]) - first)
        if line_size is not None and residual >= line_size:
            return None
    else:
        # A temporal merge needs an *integral* residual motion: reuse
        # happens at whole iterations.
        if any(w.denominator != 1 for w in witness):
            return None

    return MergeSolution(offset, inner, residual)
