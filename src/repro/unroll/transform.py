"""The unroll-and-jam source transformation.

``unroll_and_jam(nest, u)`` produces the *jammed main nest*: each unrolled
loop's step becomes ``u_k + 1`` and the body holds one shifted copy per
offset combination, in lexicographic offset order (matching the textual
order a real unroller emits).  Scalar temporaries are renamed per copy.

The returned :class:`UnrolledNest` keeps the original nest and the unroll
vector so interpreters and printers can also produce the remainder
(epilogue) iterations; ``repro.ir.interp.run_unrolled`` executes main +
epilogues in real-code order.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.ir.nodes import (
    ArrayRef,
    Loop,
    LoopNest,
    ScalarVar,
    Statement,
    shift_expr,
)
from repro.unroll.space import UnrollVector, body_copies

class TransformError(ValueError):
    """Raised for malformed unroll requests."""

@dataclass(frozen=True)
class UnrolledNest:
    """An unroll-and-jammed nest: the jammed steady-state nest plus the
    provenance needed for epilogue generation and re-analysis."""

    main: LoopNest
    original: LoopNest
    unroll: UnrollVector

    @property
    def copies(self) -> int:
        return body_copies(self.unroll)

def _copy_suffix(offsets: dict[str, int]) -> str:
    live = [(name, off) for name, off in offsets.items() if off]
    if not live:
        return ""
    return "__" + "_".join(f"{name}{off}" for name, off in live)

def jam_body(nest: LoopNest, u: UnrollVector) -> tuple[Statement, ...]:
    """The jammed statement list: one shifted copy of the body per offset."""
    temps = nest.scalar_temporaries()
    statements: list[Statement] = []
    index_names = nest.index_names
    for combo in product(*(range(u_k + 1) for u_k in u)):
        offsets = dict(zip(index_names, combo))
        suffix = _copy_suffix(offsets)
        renames = {t: t + suffix for t in temps} if suffix else {}
        for stmt in nest.body:
            rhs = shift_expr(stmt.rhs, offsets, renames)
            if isinstance(stmt.lhs, ScalarVar):
                lhs: ArrayRef | ScalarVar = ScalarVar(
                    renames.get(stmt.lhs.name, stmt.lhs.name))
            else:
                lhs = stmt.lhs.shifted(offsets)
            statements.append(Statement(lhs, rhs))
    return tuple(statements)

def unroll_and_jam(nest: LoopNest, u: UnrollVector) -> UnrolledNest:
    """Apply unroll-and-jam with unroll vector u (extra copies per loop).

    The innermost entry must be 0; legality is the caller's concern (use
    :func:`repro.unroll.safety.max_safe_unroll`).
    """
    if len(u) != nest.depth:
        raise TransformError("unroll vector length must match nest depth")
    if any(x < 0 for x in u):
        raise TransformError("unroll amounts must be non-negative")
    if u[-1] != 0:
        raise TransformError("the innermost loop is never unroll-and-jammed")

    loops = tuple(
        Loop(loop.index, loop.lower, loop.upper, loop.step * (u_k + 1))
        for loop, u_k in zip(nest.loops, u))
    main = LoopNest(
        name=f"{nest.name}_uj{'x'.join(str(x + 1) for x in u)}",
        loops=loops,
        body=jam_body(nest, u),
        description=(nest.description + " " if nest.description else "")
        + f"[unroll-and-jam {u}]",
    )
    return UnrolledNest(main=main, original=nest, unroll=u)
