"""Choosing unroll amounts (section 4.5).

The driver: pick the (at most two) loops with the best locality as scored
by Equation 1, bound each dimension by safety and the configured limit,
build the tables, and search the whole box for the unroll vector that
brings loop balance closest to machine balance without exceeding the
register file.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Sequence

from repro.balance import loop_balance, objective
from repro.balance.loop_balance import BalanceBreakdown
from repro.dependence.graph import DependenceGraph, build_dependence_graph
from repro.ir.nodes import LoopNest
from repro.machine.model import MachineModel
from repro.reuse.locality import loop_locality_scores
from repro.unroll.safety import safe_unroll_bounds
from repro.unroll.space import (
    DEFAULT_BOUND,
    UnrollSpace,
    UnrollVector,
    body_copies,
    dominates,
)
from repro.unroll.tables import UnrollTables, build_tables

@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of the unroll search for one nest."""

    nest: LoopNest
    unroll: UnrollVector
    breakdown: BalanceBreakdown
    objective: Fraction
    feasible: bool  # register constraint satisfied at the chosen vector
    space: UnrollSpace
    tables: UnrollTables
    safety: tuple[int, ...]
    candidates: tuple[int, ...]  # loop levels considered for unrolling

    @property
    def balance(self) -> Fraction:
        return self.breakdown.balance

def select_candidate_loops(nest: LoopNest, safety: tuple[int, ...],
                           max_loops: int, line_size: int,
                           scores: Sequence[Fraction] | None = None,
                           ) -> tuple[int, ...]:
    """The loops to unroll: best locality first (section 4.5), restricted
    to outer loops that safety allows to move at all.

    ``line_size`` has no default on purpose: every caller must thread the
    machine's ``cache_line_words`` through, so locality scoring can never
    silently diverge from the balance model's line size.  ``scores`` lets
    callers (the analysis engine) pass memoized
    :func:`loop_locality_scores` instead of recomputing them.
    """
    if scores is None:
        scores = loop_locality_scores(nest, line_size=line_size)
    usable = [level for level in range(nest.depth - 1) if safety[level] > 0]
    ranked = sorted(usable, key=lambda lv: (-scores[lv], lv))
    chosen = ranked[:max_loops]
    return tuple(sorted(chosen))

def search_space(tables: UnrollTables, machine: MachineModel,
                 include_cache: bool = True,
                 prune: bool = True,
                 miss_model=None) -> tuple[UnrollVector, bool]:
    """Exhaustive search of the (precomputed) table for the best vector.

    Prefers register-feasible vectors; among those, minimizes the balance
    objective, breaking ties toward fewer body copies then lexicographic
    order.  Falls back to the no-unroll vector when nothing is feasible.

    With ``prune`` (the default) the scan skips every vector that
    componentwise dominates an already-infeasible one: register pressure
    is monotone non-decreasing in the unroll vector, so a dominated point
    is exactly one the plain scan would reject on its register check.
    The selected vector is identical either way (``prune=False`` keeps the
    seed scan for the parity suite).

    ``miss_model`` (e.g. :class:`repro.reuse.profile.AssocMissModel`)
    swaps the binary Equation-1 miss charge in the objective for a
    set-associative estimate; ``None`` keeps the paper's ranking exactly.
    """
    best_u: UnrollVector | None = None
    best_key: tuple | None = None
    space = tables.space
    infeasible: list[tuple[int, ...]] = []
    for reduced in space.reduced_box():
        if infeasible and any(dominates(reduced, floor)
                              for floor in infeasible):
            continue
        u = space.embed(reduced)
        point = tables.point(u)
        if point.registers > machine.registers:
            if prune:
                infeasible.append(reduced)
            continue
        key = (objective(point, machine, include_cache, miss_model),
               body_copies(u), u)
        if best_key is None or key < best_key:
            best_key, best_u = key, u
    if best_u is None:
        return tuple(0 for _ in range(tables.nest.depth)), False
    return best_u, True

#: Vectorized search evaluates the full jam -> pack -> cost chain on at
#: most this many scalar-ranked feasible points (plus no-unroll): packing
#: is orders of magnitude costlier than a table lookup, and the scalar
#: objective is an excellent proposal distribution for it.
SIMD_BEAM = 8

def search_space_vectorized(tables: UnrollTables, machine: MachineModel,
                            include_cache: bool = True,
                            prune: bool = True,
                            miss_model=None, *,
                            estimator: Callable[[UnrollVector], object],
                            beam: int = SIMD_BEAM,
                            ) -> tuple[UnrollVector, bool]:
    """The opt-in ``vectorize=True`` search: rank register-feasible
    vectors by the scalar objective, then re-rank the top ``beam`` (plus
    the no-unroll vector) by the lane cost model's vectorized cycles per
    original iteration.  ``estimator`` maps an unroll vector to a
    :class:`repro.simd.cost.VectorEstimate`; ties fall back to the
    scalar key, so a machine whose packs never help chooses exactly the
    scalar vector.
    """
    space = tables.space
    ranked: list[tuple[tuple, UnrollVector]] = []
    infeasible: list[tuple[int, ...]] = []
    for reduced in space.reduced_box():
        if infeasible and any(dominates(reduced, floor)
                              for floor in infeasible):
            continue
        u = space.embed(reduced)
        point = tables.point(u)
        if point.registers > machine.registers:
            if prune:
                infeasible.append(reduced)
            continue
        ranked.append(((objective(point, machine, include_cache, miss_model),
                        body_copies(u), u), u))
    if not ranked:
        return tuple(0 for _ in range(tables.nest.depth)), False
    ranked.sort()
    shortlist = [u for _, u in ranked[:beam]]
    zero = tuple(0 for _ in range(tables.nest.depth))
    if zero not in shortlist and any(u == zero for _, u in ranked):
        shortlist.append(zero)
    scalar_key = dict((u, key) for key, u in ranked)
    best_u: UnrollVector | None = None
    best_key: tuple | None = None
    for u in shortlist:
        estimate = estimator(u)
        key = (Fraction(estimate.vector_cycles) / body_copies(u),
               scalar_key[u])
        if best_key is None or key < best_key:
            best_key, best_u = key, u
    assert best_u is not None
    return best_u, True

def _no_stage(_name: str):
    return nullcontext()

def choose_unroll(nest: LoopNest, machine: MachineModel,
                  bound: int = DEFAULT_BOUND, max_loops: int = 2,
                  include_cache: bool = True,
                  trip: int = 100, *,
                  graph: DependenceGraph | None = None,
                  safety: tuple[int, ...] | None = None,
                  scores: Sequence[Fraction] | None = None,
                  ugs: Sequence | None = None,
                  tables_builder: Callable[[LoopNest, UnrollSpace, int, int],
                                           UnrollTables] | None = None,
                  prune: bool = True, fast: bool = True,
                  stage: Callable[[str], object] | None = None,
                  miss_model=None,
                  vectorize: bool = False,
                  ) -> OptimizationResult:
    """End-to-end unroll-and-jam decision for one nest (the paper's
    algorithm: tables from uniformly generated sets, then an O(bound^2)
    search).

    The keyword-only parameters let :class:`repro.engine.AnalysisEngine`
    supply its memoized artifacts instead of rebuilding them per call:
    ``graph``/``safety``/``scores``/``ugs`` short-circuit the dependence,
    safety, locality and UGS-partition stages; ``tables_builder`` replaces
    the direct :func:`build_tables` call (the engine passes its cached
    layer); ``stage`` wraps named stages in the caller's instrumentation
    (a callable returning a context manager).  ``prune=False`` and
    ``fast=False`` select the seed search/table algorithms for the parity
    suite and benchmarks.  ``miss_model`` ranks candidates with a
    set-associative miss estimate instead of the binary Equation-1 charge
    (see :func:`search_space`); the default ``None`` reproduces the
    paper's decision bit-for-bit.

    ``vectorize=True`` swaps the ranking for the SLP lane cost model
    (:func:`search_space_vectorized`): minimize vectorized cycles per
    original iteration, scalar objective as tie-break.  On a machine
    without a vector unit (``vector_width_words <= 1``) the flag is a
    no-op and the scalar decision is returned unchanged.
    """
    stage = stage if stage is not None else _no_stage
    if safety is None:
        if graph is None:
            graph = build_dependence_graph(nest, include_input=False)
        safety = safe_unroll_bounds(nest, graph)
    line_size = machine.cache_line_words
    candidates = select_candidate_loops(nest, safety, max_loops, line_size,
                                        scores=scores)
    bounds = tuple(min(bound, safety[level]) for level in candidates)
    space = UnrollSpace(nest.depth, candidates, bounds)
    if tables_builder is not None:
        tables = tables_builder(nest, space, line_size, trip)
    else:
        tables = build_tables(nest, space, line_size=line_size, trip=trip,
                              ugs=list(ugs) if ugs is not None else None,
                              fast=fast)
    with stage("search"):
        if vectorize and machine.vector_width_words > 1:
            from repro.balance.loop_balance import miss_cycles
            from repro.simd import vectorize_jammed
            from repro.unroll.transform import unroll_and_jam

            def estimator(u: UnrollVector):
                point = tables.point(u)
                b = loop_balance(point, machine, include_cache, miss_model)
                return vectorize_jammed(unroll_and_jam(nest, u), machine,
                                        miss_cycles(b, machine)).estimate

            chosen, feasible = search_space_vectorized(
                tables, machine, include_cache, prune=prune,
                miss_model=miss_model, estimator=estimator)
        else:
            chosen, feasible = search_space(tables, machine, include_cache,
                                            prune=prune,
                                            miss_model=miss_model)
        point = tables.point(chosen)
        breakdown = loop_balance(point, machine, include_cache, miss_model)
    return OptimizationResult(
        nest=nest,
        unroll=chosen,
        breakdown=breakdown,
        objective=abs(breakdown.balance - machine.balance),
        feasible=feasible,
        space=space,
        tables=tables,
        safety=safety,
        candidates=candidates,
    )
