"""Table 1 + the section 5.1 aggregates: input-dependence share.

The paper ran 1187 routines through Memoria; 649 had dependences, 84% of
all dependences were input, the per-routine mean was 55.7% (std dev 33.6),
and Table 1 histograms the per-routine percentage over nine bands.  This
driver reproduces every one of those numbers on the synthetic corpus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.corpus import CorpusConfig, generate_corpus
from repro.dependence import graph_size_report
from repro.dependence.stats import GraphSizeReport
from repro.engine import AnalysisEngine

#: The paper's Table 1 bands: (label, inclusive lo %, inclusive hi %).
BANDS: tuple[tuple[str, float, float], ...] = (
    ("0%", 0.0, 0.0),
    ("1%-32%", 0.01, 32.0),
    ("33%-39%", 33.0, 39.99),
    ("40%-49%", 40.0, 49.99),
    ("50%-59%", 50.0, 59.99),
    ("60%-69%", 60.0, 69.99),
    ("70%-79%", 70.0, 79.99),
    ("80%-89%", 80.0, 89.99),
    ("90%-100%", 90.0, 100.0),
)

@dataclass(frozen=True)
class Table1Report:
    """Everything section 5.1 reports."""

    routines_total: int
    routines_with_deps: int
    total_dependences: int
    total_input: int
    band_counts: tuple[int, ...]  # aligned with BANDS
    mean_percentage: float
    std_percentage: float
    mean_input_count: float
    std_input_count: float
    total_bytes: int
    bytes_without_input: int

    @property
    def total_input_share(self) -> float:
        if not self.total_dependences:
            return 0.0
        return self.total_input / self.total_dependences

    @property
    def space_saved_fraction(self) -> float:
        if not self.total_bytes:
            return 0.0
        return 1.0 - self.bytes_without_input / self.total_bytes

    def rows(self) -> list[tuple[str, int]]:
        """Table 1 rows: (range label, number of routines)."""
        return [(label, count)
                for (label, _, _), count in zip(BANDS, self.band_counts)]

    def format(self) -> str:
        lines = ["Table 1: Percentage of Input Dependences",
                 f"{'Range':>10s}  {'Number of Routines':>18s}"]
        for label, count in self.rows():
            lines.append(f"{label:>10s}  {count:>18d}")
        lines.append("")
        lines.append(f"routines analyzed:            {self.routines_total}")
        lines.append(f"routines with dependences:    {self.routines_with_deps}")
        lines.append(f"total dependences:            {self.total_dependences}")
        lines.append(f"total input dependences:      {self.total_input} "
                     f"({100 * self.total_input_share:.0f}%)")
        lines.append(f"mean input share per routine: {self.mean_percentage:.1f}% "
                     f"(std {self.std_percentage:.1f})")
        lines.append(f"mean input deps per routine:  {self.mean_input_count:.0f} "
                     f"(std {self.std_input_count:.0f})")
        lines.append(f"graph bytes, with input deps: {self.total_bytes}")
        lines.append(f"graph bytes, UGS model:       {self.bytes_without_input} "
                     f"({100 * self.space_saved_fraction:.0f}% saved)")
        return "\n".join(lines)

def _band_index(percentage: float) -> int:
    for i, (_, lo, hi) in enumerate(BANDS):
        if lo <= percentage <= hi:
            return i
    return len(BANDS) - 1

def summarize_reports(reports: list[GraphSizeReport],
                      routines_total: int) -> Table1Report:
    """Aggregate per-routine reports into the Table 1 statistics.

    Following the paper, statistics are over routines that actually have
    dependences.
    """
    with_deps = [r for r in reports if r.total_edges]
    band_counts = [0] * len(BANDS)
    percentages = []
    input_counts = []
    for report in with_deps:
        pct = 100.0 * report.input_fraction
        band_counts[_band_index(pct)] += 1
        percentages.append(pct)
        input_counts.append(report.input_edges)

    def mean(xs):
        return sum(xs) / len(xs) if xs else 0.0

    def std(xs):
        if len(xs) < 2:
            return 0.0
        mu = mean(xs)
        return math.sqrt(sum((x - mu) ** 2 for x in xs) / (len(xs) - 1))

    return Table1Report(
        routines_total=routines_total,
        routines_with_deps=len(with_deps),
        total_dependences=sum(r.total_edges for r in with_deps),
        total_input=sum(r.input_edges for r in with_deps),
        band_counts=tuple(band_counts),
        mean_percentage=mean(percentages),
        std_percentage=std(percentages),
        mean_input_count=mean(input_counts),
        std_input_count=std(input_counts),
        total_bytes=sum(r.edge_bytes() for r in with_deps),
        bytes_without_input=sum(r.edge_bytes_without_input()
                                for r in with_deps),
    )

def run_table1(config: CorpusConfig | None = None,
               engine: AnalysisEngine | None = None) -> Table1Report:
    """Generate the corpus, analyze every routine, aggregate.

    Graph construction goes through the engine: the corpus repeats
    structures (copies, scalings, identical stencils), so a large share of
    the 1187 routines are answered from the memo instead of re-running the
    SIV tests.  Pass your own engine to read the cache counters and stage
    timings afterwards.
    """
    config = config or CorpusConfig()
    engine = engine if engine is not None else AnalysisEngine()
    nests = generate_corpus(config, metrics=engine.metrics)
    reports = []
    with engine.metrics.timer("stage.table1_analyze"):
        for nest in nests:
            graph = engine.dependence_graph(nest, include_input=True)
            reports.append(graph_size_report(graph))
    return summarize_reports(reports, config.routines)

def run_table1_by_suite(routines_per_suite: int = 300,
                        seed: int = 1997,
                        engine: AnalysisEngine | None = None,
                        ) -> dict[str, Table1Report]:
    """Per-suite breakdown over the four benchmark-flavoured sub-corpora
    (the paper pools SPEC92, Perfect, NAS and local suites; this view
    shows the share is robust across source mixes)."""
    from repro.corpus.generator import generate_suite_corpora

    engine = engine if engine is not None else AnalysisEngine()
    results = {}
    for suite, corpus in generate_suite_corpora(routines_per_suite,
                                                seed).items():
        reports = [graph_size_report(
                       engine.dependence_graph(nest, include_input=True))
                   for nest in corpus]
        results[suite] = summarize_reports(reports, len(corpus))
    return results

def format_suite_breakdown(reports: dict[str, Table1Report]) -> str:
    lines = ["Input-dependence share by suite flavour:",
             f"{'suite':<10s} {'routines':>8s} {'with deps':>9s} "
             f"{'input share':>11s} {'mean/routine':>12s}"]
    for suite, report in sorted(reports.items()):
        lines.append(
            f"{suite:<10s} {report.routines_total:>8d} "
            f"{report.routines_with_deps:>9d} "
            f"{100 * report.total_input_share:>10.0f}% "
            f"{report.mean_percentage:>11.1f}%")
    return "\n".join(lines)
