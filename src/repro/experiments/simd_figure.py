"""The Figure-8/9 analog with a SIMD axis: scalar vs vectorized objective.

For each Table 2 loop on a vector-capable machine, two search
configurations:

* **SIMD off** -- the paper's balance objective (``vectorize=False``,
  exactly the Figure 8/9 configuration);
* **SIMD on** -- the SLP lane cost objective (``vectorize=True``,
  docs/VECTORIZE.md).

Each chosen unroll vector is then packed and costed by the lane model,
so every row shows what the scalar choice *would* vectorize to next to
what the vectorized search found: estimated cycles per original
iteration for both objectives, the speedup of the winning packed body
over its own scalar issue estimate, and the packed statement fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import AnalysisEngine
from repro.kernels import Kernel, all_kernels
from repro.machine.model import MachineModel
from repro.unroll.space import UnrollVector, body_copies

@dataclass(frozen=True)
class SimdRow:
    """One loop of the SIMD on/off comparison."""

    number: int
    name: str
    unroll_scalar: UnrollVector
    unroll_simd: UnrollVector
    cycles_scalar: float  # scalar objective's choice, scalar issue est.
    cycles_scalar_packed: float  # scalar objective's choice, packed
    cycles_simd: float  # vectorized objective's choice, packed
    speedup: float  # packed vs scalar issue at the SIMD choice
    packed_fraction: float
    packs: int

def evaluate_kernel(kernel: Kernel, machine: MachineModel,
                    bound: int = 6,
                    engine: AnalysisEngine | None = None) -> SimdRow:
    """Run both searches and cost both winners with the lane model."""
    engine = engine if engine is not None else AnalysisEngine()
    nest = kernel.nest
    scalar = engine.optimize(nest, machine, bound=bound)
    simd = engine.optimize(nest, machine, bound=bound, vectorize=True)

    at_scalar = engine.simd_report(nest, machine, scalar.unroll)
    at_simd = engine.simd_report(nest, machine, simd.unroll)

    def per_iter(cycles, unroll) -> float:
        return float(cycles) / body_copies(unroll)

    return SimdRow(
        number=kernel.number,
        name=kernel.name,
        unroll_scalar=scalar.unroll,
        unroll_simd=simd.unroll,
        cycles_scalar=per_iter(at_scalar.estimate.scalar_cycles,
                               scalar.unroll),
        cycles_scalar_packed=per_iter(at_scalar.estimate.vector_cycles,
                                      scalar.unroll),
        cycles_simd=per_iter(at_simd.estimate.vector_cycles, simd.unroll),
        speedup=float(at_simd.estimate.speedup),
        packed_fraction=at_simd.packed_fraction,
        packs=len(at_simd.packs),
    )

def run_simd_figure(machine: MachineModel, bound: int = 6,
                    kernels: list[Kernel] | None = None,
                    engine: AnalysisEngine | None = None) -> list[SimdRow]:
    kernels = kernels if kernels is not None else all_kernels()
    engine = engine if engine is not None else AnalysisEngine()
    return [evaluate_kernel(kernel, machine, bound, engine)
            for kernel in kernels]

def format_simd_figure(rows: list[SimdRow], title: str) -> str:
    lines = [title,
             f"{'Num':>3s} {'Loop':<10s} {'scalar':>8s} {'sc+pack':>8s} "
             f"{'simd':>8s} {'speedup':>8s} {'packed':>7s}   "
             f"{'u(scalar)':<12s} {'u(simd)':<12s}"]
    for row in rows:
        lines.append(
            f"{row.number:>3d} {row.name:<10s} {row.cycles_scalar:>8.2f} "
            f"{row.cycles_scalar_packed:>8.2f} {row.cycles_simd:>8.2f} "
            f"{row.speedup:>7.2f}x {row.packed_fraction:>6.0%}   "
            f"{str(row.unroll_scalar):<12s} {str(row.unroll_simd):<12s}")
    n = len(rows)
    if n:
        lines.append(
            f"{'':>3s} {'MEAN':<10s} "
            f"{sum(r.cycles_scalar for r in rows) / n:>8.2f} "
            f"{sum(r.cycles_scalar_packed for r in rows) / n:>8.2f} "
            f"{sum(r.cycles_simd for r in rows) / n:>8.2f} "
            f"{sum(r.speedup for r in rows) / n:>7.2f}x "
            f"{sum(r.packed_fraction for r in rows) / n:>6.0%}")
    improved = sum(1 for r in rows if r.cycles_simd < r.cycles_scalar)
    packable = sum(1 for r in rows if r.packs)
    lines.append("")
    lines.append(f"{packable}/{n} loops packable; {improved}/{n} beat the "
                 f"scalar objective's estimate (cycles per original "
                 f"iteration, lane cost model)")
    return "\n".join(lines)
