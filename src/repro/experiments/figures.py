"""Figures 8 and 9: normalized execution time of the 19 test loops.

Three configurations per loop, exactly as the paper plots them:

* **Original** -- the loop as written (scalar replacement only, which any
  optimizing compiler performs).
* **No Cache** -- unroll amounts chosen by the balance model that assumes
  every access hits (Carr-Kennedy TOPLAS'94, reference [3]).
* **Cache** -- unroll amounts chosen by the full model of this paper.

Execution times come from the trace-driven machine simulator and are
normalized to Original; Figure 8 uses the DEC Alpha model, Figure 9 the
HP PA-RISC model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import AnalysisEngine
from repro.kernels import Kernel, all_kernels
from repro.machine.model import MachineModel
from repro.machine.simulator import SimulationResult, simulate
from repro.unroll.space import UnrollVector

@dataclass(frozen=True)
class FigureRow:
    """One bar group of Figure 8/9."""

    number: int
    name: str
    unroll_no_cache: UnrollVector
    unroll_cache: UnrollVector
    cycles_original: float
    normalized_no_cache: float
    normalized_cache: float

def evaluate_kernel(kernel: Kernel, machine: MachineModel,
                    bound: int = 6,
                    engine: AnalysisEngine | None = None) -> FigureRow:
    """Pick unroll vectors under both models and simulate all three
    configurations.

    Both model variants share one engine, so the tables are built once per
    kernel and the cache-oblivious pass is served from the memo.
    """
    engine = engine if engine is not None else AnalysisEngine()
    nest = kernel.nest
    no_cache = engine.optimize(nest, machine, bound=bound,
                               include_cache=False)
    cache = engine.optimize(nest, machine, bound=bound, include_cache=True)

    original = simulate(nest, machine, kernel.bindings, kernel.shapes)
    sim_no_cache = simulate(nest, machine, kernel.bindings, kernel.shapes,
                            unroll=no_cache.unroll)
    sim_cache = simulate(nest, machine, kernel.bindings, kernel.shapes,
                         unroll=cache.unroll)
    return FigureRow(
        number=kernel.number,
        name=kernel.name,
        unroll_no_cache=no_cache.unroll,
        unroll_cache=cache.unroll,
        cycles_original=float(original.cycles),
        normalized_no_cache=sim_no_cache.normalized_to(original),
        normalized_cache=sim_cache.normalized_to(original),
    )

def run_figure(machine: MachineModel, bound: int = 6,
               kernels: list[Kernel] | None = None,
               engine: AnalysisEngine | None = None) -> list[FigureRow]:
    """All bar groups for one machine (Figure 8: Alpha, Figure 9: PA-RISC)."""
    kernels = kernels if kernels is not None else all_kernels()
    engine = engine if engine is not None else AnalysisEngine()
    return [evaluate_kernel(kernel, machine, bound, engine)
            for kernel in kernels]

def render_bars(rows: list[FigureRow], width: int = 40) -> str:
    """ASCII rendering of the figure's bar groups (Original / No Cache /
    Cache per loop), mirroring the paper's plot."""
    lines = []
    for row in rows:
        lines.append(f"{row.number:>2d} {row.name}")
        for label, value in (("orig", 1.0),
                             ("no$ ", row.normalized_no_cache),
                             ("$   ", row.normalized_cache)):
            bar = "#" * max(1, round(value * width))
            lines.append(f"     {label} |{bar} {value:.2f}")
    return "\n".join(lines)

def format_figure(rows: list[FigureRow], title: str) -> str:
    lines = [title,
             f"{'Num':>3s} {'Loop':<10s} {'Original':>9s} {'No Cache':>9s} "
             f"{'Cache':>9s}   {'u(no cache)':<12s} {'u(cache)':<12s}"]
    for row in rows:
        lines.append(
            f"{row.number:>3d} {row.name:<10s} {1.0:>9.2f} "
            f"{row.normalized_no_cache:>9.2f} {row.normalized_cache:>9.2f}   "
            f"{str(row.unroll_no_cache):<12s} {str(row.unroll_cache):<12s}")
    mean_nc = sum(r.normalized_no_cache for r in rows) / len(rows)
    mean_c = sum(r.normalized_cache for r in rows) / len(rows)
    lines.append(f"{'':>3s} {'MEAN':<10s} {1.0:>9.2f} {mean_nc:>9.2f} "
                 f"{mean_c:>9.2f}")
    lines.append("")
    lines.append(render_bars(rows))
    return "\n".join(lines)
