"""Ablations: the comparisons the paper makes in prose (section 5.3 and
the future-work list of section 6).

* **Brute-force parity** -- the table-based optimizer must pick unroll
  vectors with the same objective value as Wolf-Maydan-Chen exhaustive
  re-unrolling, while materializing zero unrolled bodies.
* **Register sweep** -- how the register-file constraint changes decisions
  (the flaw the paper identifies in Wolf et al.'s comparison: unrolling
  chosen without register limits over-pressures small files).
* **Prefetch sweep** -- the model's prefetch-bandwidth term: as bandwidth
  grows, the miss term shrinks and the cache model converges to the
  no-cache model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction

from repro.baselines.brute_force import brute_force_choose
from repro.kernels import Kernel, all_kernels
from repro.machine.model import MachineModel
from repro.machine.presets import dec_alpha
from repro.machine.simulator import simulate
from repro.unroll.optimize import choose_unroll
from repro.unroll.space import UnrollVector

@dataclass(frozen=True)
class ParityRow:
    """Table model vs brute force on one kernel."""

    name: str
    table_unroll: UnrollVector
    brute_unroll: UnrollVector
    table_objective: Fraction
    brute_objective: Fraction
    table_seconds: float
    brute_seconds: float
    bodies_materialized: int

    @property
    def objectives_match(self) -> bool:
        return self.table_objective == self.brute_objective

def run_bruteforce_parity(machine: MachineModel | None = None,
                          bound: int = 4,
                          kernels: list[Kernel] | None = None) -> list[ParityRow]:
    """Section 5.3: same decisions, no data-structure unrolling."""
    machine = machine or dec_alpha()
    kernels = kernels if kernels is not None else all_kernels()
    rows = []
    for kernel in kernels:
        start = time.perf_counter()
        table = choose_unroll(kernel.nest, machine, bound=bound)
        table_seconds = time.perf_counter() - start
        start = time.perf_counter()
        brute = brute_force_choose(kernel.nest, machine, table.space)
        brute_seconds = time.perf_counter() - start
        rows.append(ParityRow(
            name=kernel.name,
            table_unroll=table.unroll,
            brute_unroll=brute.unroll,
            table_objective=table.objective,
            brute_objective=brute.objective,
            table_seconds=table_seconds,
            brute_seconds=brute_seconds,
            bodies_materialized=brute.bodies_materialized,
        ))
    return rows

@dataclass(frozen=True)
class RegisterRow:
    """One kernel under one register-file size."""

    name: str
    registers: int
    unroll: UnrollVector
    predicted_registers: int
    normalized_cycles: float

def run_register_sweep(register_sizes: tuple[int, ...] = (8, 16, 32, 64),
                       kernels: list[Kernel] | None = None,
                       bound: int = 6) -> list[RegisterRow]:
    """Register-pressure ablation: smaller files force smaller unrolls."""
    kernels = kernels if kernels is not None else all_kernels()
    rows = []
    for kernel in kernels:
        base = simulate(kernel.nest, dec_alpha(), kernel.bindings,
                        kernel.shapes)
        for regs in register_sizes:
            machine = dec_alpha().with_registers(regs)
            result = choose_unroll(kernel.nest, machine, bound=bound)
            sim = simulate(kernel.nest, machine, kernel.bindings,
                           kernel.shapes, unroll=result.unroll)
            rows.append(RegisterRow(
                name=kernel.name,
                registers=regs,
                unroll=result.unroll,
                predicted_registers=int(result.tables.point(result.unroll).registers),
                normalized_cycles=sim.normalized_to(base),
            ))
    return rows

@dataclass(frozen=True)
class PrefetchRow:
    """One kernel under one prefetch-issue bandwidth."""

    name: str
    bandwidth: Fraction
    unroll: UnrollVector
    balance: Fraction
    normalized_cycles: float

@dataclass(frozen=True)
class SoftwarePrefetchRow:
    """One kernel with and without the section-6 software-prefetch pass."""

    name: str
    unroll: UnrollVector
    normalized_plain: float
    normalized_prefetched: float
    stall_misses_plain: int
    stall_misses_prefetched: int
    prefetch_ops: int

def run_software_prefetch(kernels: list[Kernel] | None = None,
                          bound: int = 6) -> list[SoftwarePrefetchRow]:
    """Software prefetch applied on top of the chosen unroll vectors."""
    kernels = kernels if kernels is not None else all_kernels()
    machine = dec_alpha()
    rows = []
    for kernel in kernels:
        result = choose_unroll(kernel.nest, machine, bound=bound)
        base = simulate(kernel.nest, machine, kernel.bindings, kernel.shapes)
        plain = simulate(kernel.nest, machine, kernel.bindings,
                         kernel.shapes, unroll=result.unroll)
        fetched = simulate(kernel.nest, machine, kernel.bindings,
                           kernel.shapes, unroll=result.unroll,
                           software_prefetch=True)
        rows.append(SoftwarePrefetchRow(
            name=kernel.name,
            unroll=result.unroll,
            normalized_plain=plain.normalized_to(base),
            normalized_prefetched=fetched.normalized_to(base),
            stall_misses_plain=plain.stall_misses,
            stall_misses_prefetched=fetched.stall_misses,
            prefetch_ops=fetched.prefetch_ops,
        ))
    return rows

def run_prefetch_sweep(bandwidths: tuple[Fraction, ...] = (
        Fraction(0), Fraction(1, 8), Fraction(1, 4), Fraction(1, 2),
        Fraction(1)),
        kernels: list[Kernel] | None = None,
        bound: int = 6) -> list[PrefetchRow]:
    """Software-prefetch ablation (the paper's future-work architecture)."""
    kernels = kernels if kernels is not None else all_kernels()
    rows = []
    for kernel in kernels:
        base = simulate(kernel.nest, dec_alpha(), kernel.bindings,
                        kernel.shapes)
        for bandwidth in bandwidths:
            machine = dec_alpha().with_prefetch(bandwidth)
            result = choose_unroll(kernel.nest, machine, bound=bound)
            sim = simulate(kernel.nest, machine, kernel.bindings,
                           kernel.shapes, unroll=result.unroll)
            rows.append(PrefetchRow(
                name=kernel.name,
                bandwidth=bandwidth,
                unroll=result.unroll,
                balance=result.balance,
                normalized_cycles=sim.normalized_to(base),
            ))
    return rows
