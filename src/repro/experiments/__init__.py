"""Experiment drivers regenerating every table and figure of the paper.

Each module computes one artifact's rows programmatically; the benchmark
harness and the examples print them.  The index lives in DESIGN.md; the
measured-vs-paper comparison lives in EXPERIMENTS.md.
"""

from repro.experiments.table1 import Table1Report, run_table1
from repro.experiments.table2 import Table2Row, run_table2
from repro.experiments.figures import FigureRow, run_figure
from repro.experiments.ablation import (
    run_bruteforce_parity,
    run_prefetch_sweep,
    run_register_sweep,
)

__all__ = [
    "FigureRow",
    "Table1Report",
    "Table2Row",
    "run_bruteforce_parity",
    "run_figure",
    "run_prefetch_sweep",
    "run_register_sweep",
    "run_table1",
    "run_table2",
]
