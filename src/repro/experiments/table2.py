"""Table 2: the test-loop roster, plus per-kernel model analysis.

The paper's Table 2 only lists the loops; our version also reports what
the model sees in each (depth, references, original loop balance), which
the benchmark prints alongside the roster.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.balance import loop_balance
from repro.baselines.brute_force import measure_unrolled
from repro.kernels import Kernel, all_kernels
from repro.machine.model import MachineModel
from repro.machine.presets import dec_alpha

@dataclass(frozen=True)
class Table2Row:
    """One roster entry with its model characterization."""

    number: int
    name: str
    description: str
    depth: int
    references: int
    flops: int
    original_balance: Fraction

def run_table2(machine: MachineModel | None = None) -> list[Table2Row]:
    machine = machine or dec_alpha()
    rows = []
    for kernel in all_kernels():
        nest = kernel.nest
        zero = tuple(0 for _ in range(nest.depth))
        point = measure_unrolled(nest, zero,
                                 line_size=machine.cache_line_words)
        breakdown = loop_balance(point, machine)
        refs = sum(len(s.array_reads()) + len(s.array_writes())
                   for s in nest.body)
        rows.append(Table2Row(
            number=kernel.number,
            name=kernel.name,
            description=kernel.description,
            depth=nest.depth,
            references=refs,
            flops=nest.flops_per_iteration(),
            original_balance=breakdown.balance,
        ))
    return rows

def format_table2(rows: list[Table2Row]) -> str:
    lines = ["Table 2: Description of Test Loops",
             f"{'Num':>3s} {'Loop':<10s} {'Description':<28s} "
             f"{'depth':>5s} {'refs':>4s} {'flops':>5s} {'beta_L':>7s}"]
    for row in rows:
        lines.append(
            f"{row.number:>3d} {row.name:<10s} {row.description:<28s} "
            f"{row.depth:>5d} {row.references:>4d} {row.flops:>5d} "
            f"{float(row.original_balance):>7.2f}")
    return "\n".join(lines)
