"""Model-vs-machine validation: does the balance model rank unroll vectors
the way the simulated machine does?

The paper's method stands on the premise that minimizing
``|beta_L(u) - beta_M|`` picks unroll vectors that actually run faster.
This driver quantifies that premise: for each kernel it sweeps the unroll
space, records the model's predicted balance and the simulator's measured
cycles per flop, and reports their Spearman rank correlation plus the
regret of the model's pick against the simulated optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from scipy import stats

from repro.balance import loop_balance
from repro.kernels import Kernel, all_kernels
from repro.machine.model import MachineModel
from repro.machine.presets import dec_alpha
from repro.machine.simulator import simulate
from repro.unroll.optimize import choose_unroll
from repro.unroll.space import UnrollVector

@dataclass(frozen=True)
class ValidationRow:
    """Model-vs-simulator agreement for one kernel."""

    name: str
    points: int  # register-feasible unroll vectors swept
    spearman: float  # rank correlation: predicted balance vs cycles/flop
    chosen: UnrollVector
    simulated_best: UnrollVector
    regret: float  # model pick's cycles / simulated optimum's cycles

def validate_kernel(kernel: Kernel, machine: MachineModel,
                    bound: int = 4) -> ValidationRow:
    result = choose_unroll(kernel.nest, machine, bound=bound)
    tables = result.tables
    predicted: list[float] = []
    measured: list[float] = []
    cycles_by_u: dict[UnrollVector, Fraction] = {}
    for u in result.space:
        point = tables.point(u)
        if point.registers > machine.registers:
            continue
        breakdown = loop_balance(point, machine)
        sim = simulate(kernel.nest, machine, kernel.bindings, kernel.shapes,
                       unroll=u)
        predicted.append(float(breakdown.balance))
        measured.append(float(sim.cycles / sim.flops))
        cycles_by_u[u] = sim.cycles
    if len(predicted) > 1 and len(set(predicted)) > 1 \
            and len(set(measured)) > 1:
        rho = float(stats.spearmanr(predicted, measured).statistic)
    else:
        rho = 1.0  # degenerate sweep: nothing to misrank
    best_u = min(cycles_by_u, key=cycles_by_u.get)
    regret = float(cycles_by_u[result.unroll] / cycles_by_u[best_u])
    return ValidationRow(
        name=kernel.name,
        points=len(cycles_by_u),
        spearman=rho,
        chosen=result.unroll,
        simulated_best=best_u,
        regret=regret,
    )

def run_validation(machine: MachineModel | None = None, bound: int = 4,
                   kernels: list[Kernel] | None = None) -> list[ValidationRow]:
    machine = machine or dec_alpha()
    kernels = kernels if kernels is not None else all_kernels()
    return [validate_kernel(kernel, machine, bound) for kernel in kernels]

def format_validation(rows: list[ValidationRow]) -> str:
    lines = ["Model validation: predicted balance vs simulated cycles/flop",
             f"{'Loop':<10s} {'points':>6s} {'spearman':>8s} "
             f"{'chosen':<12s} {'sim best':<12s} {'regret':>7s}"]
    for r in rows:
        lines.append(f"{r.name:<10s} {r.points:>6d} {r.spearman:>8.2f} "
                     f"{str(r.chosen):<12s} {str(r.simulated_best):<12s} "
                     f"{r.regret:>7.2f}")
    mean_rho = sum(r.spearman for r in rows) / len(rows)
    mean_regret = sum(r.regret for r in rows) / len(rows)
    lines.append(f"{'MEAN':<10s} {'':>6s} {mean_rho:>8.2f} "
                 f"{'':<12s} {'':<12s} {mean_regret:>7.2f}")
    return "\n".join(lines)
