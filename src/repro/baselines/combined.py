"""Combined permutation + unroll search (the full Wolf-Maydan-Chen scope).

Section 5.3's comparison target considers loop permutation together with
unroll-and-jam.  This module implements both sides of that comparison on
our infrastructure:

* :func:`combined_brute_force` -- WMC style: enumerate every legal loop
  order, and for each, every unroll vector, measuring each candidate on a
  materialized body.
* :func:`permute_then_table` -- the composition this paper suggests:
  choose the memory order first (Equation-1 cost), then run the table
  search on the permuted nest.

The experiment drivers compare decision quality and work done (bodies
materialized) between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.balance import loop_balance, objective
from repro.balance.loop_balance import BalanceBreakdown
from repro.baselines.brute_force import measure_unrolled
from repro.ir.nodes import LoopNest
from repro.machine.model import MachineModel
from repro.transforms.interchange import legal_permutations, memory_order, permute
from repro.unroll.optimize import OptimizationResult, choose_unroll
from repro.unroll.safety import safe_unroll_bounds
from repro.unroll.space import UnrollSpace, UnrollVector, body_copies

@dataclass(frozen=True)
class CombinedResult:
    """Outcome of a permutation + unroll decision."""

    nest: LoopNest  # the permuted nest the unroll applies to
    order: tuple[int, ...]
    unroll: UnrollVector
    breakdown: BalanceBreakdown
    objective: Fraction
    bodies_materialized: int

def _space_for(nest: LoopNest, bound: int, max_loops: int,
               line_size: int) -> UnrollSpace:
    from repro.unroll.optimize import select_candidate_loops

    safety = safe_unroll_bounds(nest)
    candidates = select_candidate_loops(nest, safety, max_loops, line_size)
    bounds = tuple(min(bound, safety[level]) for level in candidates)
    return UnrollSpace(nest.depth, candidates, bounds)

def combined_brute_force(nest: LoopNest, machine: MachineModel,
                         bound: int = 4, max_loops: int = 2,
                         include_cache: bool = True,
                         trip: int = 100) -> CombinedResult:
    """Exhaustive WMC search over (legal order) x (unroll vector)."""
    line_size = machine.cache_line_words
    best_key: tuple | None = None
    best_data: tuple | None = None
    bodies = 0
    for order in legal_permutations(nest):
        permuted = permute(nest, order, check=False)
        space = _space_for(permuted, bound, max_loops, line_size)
        for u in space:
            bodies += 1
            point = measure_unrolled(permuted, u, line_size=line_size,
                                     trip=trip)
            if point.registers > machine.registers:
                continue
            key = (objective(point, machine, include_cache), body_copies(u),
                   order, u)
            if best_key is None or key < best_key:
                best_key = key
                best_data = (order, u, point, permuted)
    if best_data is None:
        permuted = nest
        u = tuple(0 for _ in range(nest.depth))
        point = measure_unrolled(nest, u, line_size=line_size, trip=trip)
        best_data = (tuple(range(nest.depth)), u, point, permuted)
    order, u, point, permuted = best_data
    breakdown = loop_balance(point, machine, include_cache)
    return CombinedResult(
        nest=permuted, order=order, unroll=u, breakdown=breakdown,
        objective=abs(breakdown.balance - machine.balance),
        bodies_materialized=bodies)

def permute_then_table(nest: LoopNest, machine: MachineModel,
                       bound: int = 4, max_loops: int = 2,
                       include_cache: bool = True,
                       trip: int = 100) -> CombinedResult:
    """Memory-order the nest, then run the paper's table search on it --
    no materialized bodies at all."""
    ordered = memory_order(nest, line_size=machine.cache_line_words,
                           trip=trip)
    order = tuple(nest.index_names.index(loop.index)
                  for loop in ordered.loops)
    result: OptimizationResult = choose_unroll(
        ordered, machine, bound=bound, max_loops=max_loops,
        include_cache=include_cache, trip=trip)
    return CombinedResult(
        nest=ordered, order=order, unroll=result.unroll,
        breakdown=result.breakdown, objective=result.objective,
        bodies_materialized=0)
