"""Baselines the paper compares against.

* :mod:`repro.baselines.brute_force` -- the Wolf, Maydan & Chen approach:
  materialize the unrolled body for every candidate unroll vector and
  measure the metric on it.  Also the ground-truth oracle for the tables.
* :mod:`repro.baselines.dependence_model` -- the Carr-Kennedy
  dependence-based model: reference groups derived from a dependence graph
  that must include input dependences (the space cost Table 1 quantifies).
"""

from repro.baselines.brute_force import (
    BruteForceResult,
    brute_force_choose,
    measure_unrolled,
)
from repro.baselines.dependence_model import (
    DependenceModelResult,
    dependence_based_choose,
    dependence_reference_groups,
)

__all__ = [
    "BruteForceResult",
    "DependenceModelResult",
    "brute_force_choose",
    "dependence_based_choose",
    "dependence_reference_groups",
    "measure_unrolled",
]
