"""The dependence-based reuse model (the Carr-Kennedy / Carr'96 baseline).

Where the UGS model answers reuse questions with linear algebra, this
baseline derives *reference groups* from a dependence graph that must
include input (read-read) dependences -- the storage the paper's Table 1
measures.  Reuse groups are connected components of register-consistent
dependences (zero distance on every loop except the innermost); register
chains and memory-operation counts follow from the edge distances.

For unroll selection the baseline measures every candidate vector on the
materialized unrolled body's *full* dependence graph, so its per-decision
cost includes building and storing all those input dependences; the
experiment drivers report exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.balance import loop_balance, objective
from repro.balance.loop_balance import BalanceBreakdown
from repro.dependence.graph import DependenceGraph, build_dependence_graph
from repro.dependence.siv import STAR
from repro.ir.matrixform import RefOccurrence, constant_vector, occurrences
from repro.ir.nodes import LoopNest
from repro.machine.model import MachineModel
from repro.unroll.space import UnrollSpace, UnrollVector, body_copies
from repro.unroll.tables import UnrollPoint
from repro.unroll.transform import unroll_and_jam

def _register_consistent(distance, depth: int) -> bool:
    """True when the dependence can be exploited by registers: zero
    distance on every loop except the innermost, whose distance is a known
    integer or invariant."""
    for level, entry in enumerate(distance):
        if level == depth - 1:
            if entry == STAR:
                return False
            continue
        if entry != 0:
            return False
    return True

class _UnionFind:
    def __init__(self, items):
        self.parent = {item: item for item in items}

    def find(self, item):
        while self.parent[item] != item:
            self.parent[item] = self.parent[self.parent[item]]
            item = self.parent[item]
        return item

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra

def dependence_reference_groups(nest: LoopNest,
                                graph: DependenceGraph | None = None
                                ) -> list[list[RefOccurrence]]:
    """Reference groups (the dependence-based analogue of innermost-local
    GTSs) from register-consistent dependence edges."""
    if graph is None:
        graph = build_dependence_graph(nest, include_input=True)
    occs = occurrences(nest)
    uf = _UnionFind([o.position for o in occs])
    for dep in graph:
        if dep.kind not in ("flow", "input", "output"):
            continue
        if _register_consistent(dep.distance, nest.depth):
            uf.union(dep.src.position, dep.dst.position)
    groups: dict[int, list[RefOccurrence]] = {}
    for occ in occs:
        groups.setdefault(uf.find(occ.position), []).append(occ)
    return [sorted(members, key=lambda o: o.position)
            for _, members in sorted(groups.items())]

def _group_chains(group: list[RefOccurrence],
                  inner_name: str) -> tuple[int, int]:
    """(memory ops, registers) for one reference group via def-split
    chains ordered by innermost touch time."""
    def touch_time(occ: RefOccurrence) -> Fraction:
        for sub in occ.ref.subscripts:
            coef = sub.coeff(inner_name)
            if coef:
                return -Fraction(sub.const, coef)
        return Fraction(0)

    ordered = sorted(group, key=lambda o: (touch_time(o), o.position))
    chains: list[list[RefOccurrence]] = []
    current: list[RefOccurrence] = []
    for occ in ordered:
        if occ.is_write and current:
            chains.append(current)
            current = [occ]
        else:
            current.append(occ)
    if current:
        chains.append(current)
    registers = 0
    for chain in chains:
        times = [touch_time(o) for o in chain]
        registers += int(max(times) - min(times)) + 1
    return len(chains), registers

@dataclass(frozen=True)
class DependenceModelResult:
    """Outcome of the dependence-based unroll search, with the graph-space
    cost it paid."""

    nest: LoopNest
    unroll: UnrollVector
    breakdown: BalanceBreakdown
    objective: Fraction
    total_dependences: int  # summed over every graph built during search
    input_dependences: int

def measure_unrolled_dependence(nest: LoopNest, u: UnrollVector,
                                line_size: int,
                                trip: int = 100
                                ) -> tuple[UnrollPoint, DependenceGraph]:
    """Measure model quantities for unroll u through the dependence lens."""
    main = unroll_and_jam(nest, u).main
    graph = build_dependence_graph(main, include_input=True)
    groups = dependence_reference_groups(main, graph)
    inner_name = main.loops[-1].index

    memory_ops = 0
    registers = 0
    for group in groups:
        ops, regs = _group_chains(group, inner_name)
        memory_ops += ops
        registers += regs

    # Cache cost: one stream per group; invariant/spatial discounts from
    # the subscript of the group leader (the dependence model reads stride
    # information off the subscripts just as Carr'96 does).
    cache_cost = Fraction(0)
    for group in groups:
        leader = group[0]
        inner_coef = 0
        contiguous = False
        invariant = True
        for dim, sub in enumerate(leader.ref.subscripts):
            coef = sub.coeff(inner_name)
            if coef:
                invariant = False
                inner_coef = coef
                contiguous = dim == 0
        if invariant:
            cache_cost += Fraction(1, trip)
        elif contiguous and abs(inner_coef) == 1:
            cache_cost += Fraction(1, line_size)
        else:
            cache_cost += 1
    point = UnrollPoint(
        u=u,
        flops=Fraction(main.flops_per_iteration()),
        memory_ops=Fraction(memory_ops),
        registers=Fraction(registers),
        gts=Fraction(len(groups)),
        gss=Fraction(len(groups)),
        cache_cost=cache_cost,
    )
    return point, graph

def dependence_based_choose(nest: LoopNest, machine: MachineModel,
                            space: UnrollSpace, include_cache: bool = True,
                            trip: int = 100) -> DependenceModelResult:
    """Search ``space`` with the dependence-based model, accounting the
    dependence-graph space consumed along the way."""
    line_size = machine.cache_line_words
    best_u: UnrollVector | None = None
    best_key: tuple | None = None
    best_point: UnrollPoint | None = None
    total_deps = 0
    input_deps = 0
    for u in space:
        point, graph = measure_unrolled_dependence(nest, u, line_size, trip)
        total_deps += graph.total_count
        input_deps += graph.input_count
        if point.registers > machine.registers:
            continue
        key = (objective(point, machine, include_cache), body_copies(u), u)
        if best_key is None or key < best_key:
            best_key, best_u, best_point = key, u, point
    if best_u is None:
        best_u = tuple(0 for _ in range(nest.depth))
        best_point, _ = measure_unrolled_dependence(nest, best_u, line_size,
                                                    trip)
    breakdown = loop_balance(best_point, machine, include_cache)
    return DependenceModelResult(
        nest=nest,
        unroll=best_u,
        breakdown=breakdown,
        objective=abs(breakdown.balance - machine.balance),
        total_dependences=total_deps,
        input_dependences=input_deps,
    )
