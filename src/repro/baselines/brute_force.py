"""The Wolf-Maydan-Chen brute-force baseline (section 5.3 comparison).

For every candidate unroll vector this optimizer *actually unrolls* the
loop body and measures the model quantities on the transformed code:
uniformly generated sets are re-partitioned, reuse groups re-derived, and
register chains re-built from scratch.  That is exactly the cost the
paper's precomputed tables avoid -- and because the measurement path shares
no unroll-specific code with the tables, it doubles as the ground-truth
oracle in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.balance import loop_balance, objective
from repro.balance.loop_balance import BalanceBreakdown
from repro.ir.nodes import LoopNest
from repro.linalg import VectorSpace
from repro.machine.model import MachineModel
from repro.reuse.group import group_spatial_partition, group_temporal_partition
from repro.reuse.locality import innermost_localized_space
from repro.reuse.selfreuse import has_self_spatial, localized_temporal_dim
from repro.reuse.ugs import partition_ugs
from repro.unroll.space import UnrollSpace, UnrollVector, body_copies
from repro.unroll.streams import conservative_chains, is_analyzable, stream_chains
from repro.unroll.tables import UnrollPoint
from repro.unroll.transform import unroll_and_jam

def measure_unrolled(nest: LoopNest, u: UnrollVector, line_size: int = 4,
                     trip: int = 100,
                     localized: VectorSpace | None = None) -> UnrollPoint:
    """Measure the model quantities on the *materialized* unrolled body.

    The jammed main nest is built, its references re-partitioned into UGSs
    and the reuse groups and register chains recomputed directly -- no
    precomputed tables involved.
    """
    main = unroll_and_jam(nest, u).main
    localized = localized if localized is not None else innermost_localized_space(main)
    zero = tuple(0 for _ in range(main.depth))

    memory_ops = Fraction(0)
    registers = Fraction(0)
    gts_total = Fraction(0)
    gss_total = Fraction(0)
    cache_cost = Fraction(0)
    line = Fraction(line_size)
    for ugs in partition_ugs(main):
        g_t = len(group_temporal_partition(ugs, localized))
        g_s = len(group_spatial_partition(ugs, localized, line_size))
        if is_analyzable(ugs):
            summary = stream_chains(ugs, zero, dims=())
        else:
            summary = conservative_chains(ugs, zero, dims=())
        memory_ops += summary.memory_ops
        registers += summary.registers
        gts_total += g_t
        gss_total += g_s
        k = localized_temporal_dim(ugs.matrix, localized)
        if k > 0:
            base = Fraction(1, trip ** k)
        elif has_self_spatial(ugs.matrix, localized):
            base = Fraction(1, line_size)
        else:
            base = Fraction(1)
        cache_cost += base * (Fraction(g_s) + Fraction(g_t - g_s) / line)

    return UnrollPoint(
        u=u,
        flops=Fraction(main.flops_per_iteration()),
        memory_ops=memory_ops,
        registers=registers,
        gts=gts_total,
        gss=gss_total,
        cache_cost=cache_cost,
    )

@dataclass(frozen=True)
class BruteForceResult:
    """Outcome of the exhaustive unroll search."""

    nest: LoopNest
    unroll: UnrollVector
    breakdown: BalanceBreakdown
    objective: Fraction
    vectors_tried: int
    bodies_materialized: int  # == vectors_tried: the cost the tables avoid

def brute_force_choose(nest: LoopNest, machine: MachineModel,
                       space: UnrollSpace, include_cache: bool = True,
                       trip: int = 100) -> BruteForceResult:
    """Search ``space`` by re-unrolling and re-measuring at every vector."""
    line_size = machine.cache_line_words
    best_u: UnrollVector | None = None
    best_key: tuple | None = None
    best_point: UnrollPoint | None = None
    tried = 0
    for u in space:
        tried += 1
        point = measure_unrolled(nest, u, line_size=line_size, trip=trip)
        if point.registers > machine.registers:
            continue
        key = (objective(point, machine, include_cache), body_copies(u), u)
        if best_key is None or key < best_key:
            best_key, best_u, best_point = key, u, point
    if best_u is None:
        best_u = tuple(0 for _ in range(nest.depth))
        best_point = measure_unrolled(nest, best_u, line_size=line_size,
                                      trip=trip)
    breakdown = loop_balance(best_point, machine, include_cache)
    return BruteForceResult(
        nest=nest,
        unroll=best_u,
        breakdown=breakdown,
        objective=abs(breakdown.balance - machine.balance),
        vectors_tried=tried,
        bodies_materialized=tried,
    )
