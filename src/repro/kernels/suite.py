"""Definitions of the Table 2 test loops.

Every kernel is a perfect affine nest written with the builder DSL.  The
reconstructions preserve what the models care about: loop order, array
reference patterns (stencils, strides, invariants), and the read/write mix.
All loops are memory bound (loop balance above 1) and unroll-and-jam legal,
matching the selection criteria of section 5.2.

Array indexing is 0-based; loop bounds are chosen so subscripts stay inside
the shapes that :meth:`Kernel.shapes` allocates (with halo padding where
stencils need it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.ir.builder import NestBuilder
from repro.ir.nodes import LoopNest

@dataclass(frozen=True)
class Kernel:
    """One Table 2 entry: the nest plus its simulation workload."""

    number: int
    name: str
    description: str
    nest: LoopNest
    bindings: dict[str, int]
    shapes: dict[str, tuple[int, ...]]
    siv: bool = True  # fits the section 3.5 reference class

def _sq(n: int, pad: int = 4) -> tuple[int, int]:
    return (n + pad, n + pad)

# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------

def jacobi(n: int = 120) -> Kernel:
    """1: Jacobi relaxation -- compute the Jacobian of a matrix."""
    b = NestBuilder("jacobi", "Compute Jacobian of a Matrix")
    I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
    b.assign(b.ref("A", I, J),
             (b.ref("B", I - 1, J) + b.ref("B", I + 1, J)
              + b.ref("B", I, J - 1) + b.ref("B", I, J + 1)) * 0.25)
    return Kernel(1, "jacobi", "Compute Jacobian of a Matrix", b.build(),
                  {"N": n}, {"A": _sq(n), "B": _sq(n)})

def afold(n: int = 120) -> Kernel:
    """2: adjoint convolution; B(I+J) is the paper's rare non-SIV case."""
    b = NestBuilder("afold", "Adjoint Convolution")
    I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
    b.assign(b.ref("A", I),
             b.ref("A", I) + b.ref("B", I + J) * b.ref("C", J))
    return Kernel(2, "afold", "Adjoint Convolution", b.build(),
                  {"N": n}, {"A": (n + 2,), "B": (2 * n + 2,), "C": (n + 2,)},
                  siv=False)

def btrix1(n: int = 14) -> Kernel:
    """3: SPEC/NASA7/BTRIX loop 1 -- block-tridiagonal forward elimination."""
    b = NestBuilder("btrix.1", "SPEC/NASA7/BTRIX")
    J, K, I = b.loops(("J", 1, "N"), ("K", 0, "N"), ("I", 0, "N"))
    b.assign(b.ref("S", J, K, I),
             b.ref("S", J, K, I)
             - b.ref("A", J - 1, K, I) * b.ref("S", J - 1, K, I)
             - b.ref("B", J, K, I) * b.ref("S", J - 1, K, I))
    return Kernel(3, "btrix.1", "SPEC/NASA7/BTRIX", b.build(), {"N": n},
                  {"S": (n + 2,) * 3, "A": (n + 2,) * 3, "B": (n + 2,) * 3})

def btrix2(n: int = 14) -> Kernel:
    """4: SPEC/NASA7/BTRIX loop 2 -- back substitution sweep."""
    b = NestBuilder("btrix.2", "SPEC/NASA7/BTRIX")
    K, J, I = b.loops(("K", 0, "N"), ("J", 0, "N"), ("I", 0, "N"))
    b.assign(b.ref("S", J, K, I),
             b.ref("S", J, K, I) * b.ref("D", J, K)
             + b.ref("C", J, K, I) * b.ref("S", J, K + 1, I))
    return Kernel(4, "btrix.2", "SPEC/NASA7/BTRIX", b.build(), {"N": n},
                  {"S": (n + 2,) * 3, "C": (n + 2,) * 3, "D": (n + 2, n + 2)})

def btrix7(n: int = 14) -> Kernel:
    """5: SPEC/NASA7/BTRIX loop 7 -- LU-style update with invariant pivots."""
    b = NestBuilder("btrix.7", "SPEC/NASA7/BTRIX")
    K, J, I = b.loops(("K", 1, "N"), ("J", 1, "N"), ("I", 0, "N"))
    b.assign(b.ref("U", J, K, I),
             b.ref("U", J, K, I)
             - b.ref("L", J, K) * b.ref("U", J - 1, K, I)
             - b.ref("M", J, K) * b.ref("U", J, K - 1, I))
    return Kernel(5, "btrix.7", "SPEC/NASA7/BTRIX", b.build(), {"N": n},
                  {"U": (n + 2,) * 3, "L": (n + 2, n + 2), "M": (n + 2, n + 2)})

def collc2(n: int = 56) -> Kernel:
    """6: Perfect/FLO52/COLLC -- grid coarsening with stride-2 reads."""
    b = NestBuilder("collc.2", "Perfect/FLO52/COLLC")
    I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
    b.assign(b.ref("W", I, J),
             (b.ref("WF", 2 * I, 2 * J) + b.ref("WF", 2 * I + 1, 2 * J)
              + b.ref("WF", 2 * I, 2 * J + 1)
              + b.ref("WF", 2 * I + 1, 2 * J + 1)) * 0.25)
    return Kernel(6, "collc.2", "Perfect/FLO52/COLLC", b.build(), {"N": n},
                  {"W": _sq(n), "WF": (2 * n + 4, 2 * n + 4)})

def cond7(n: int = 120) -> Kernel:
    """7: local/SIMPLE/CONDUCT loop 7 -- heat conduction coefficients."""
    b = NestBuilder("cond.7", "local/simple/conduct")
    I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
    b.assign(b.ref("SIG", I, J),
             (b.ref("T", I, J) + b.ref("T", I - 1, J))
             * (b.ref("R", I, J) - b.ref("R", I - 1, J))
             * b.ref("CK", I, J))
    return Kernel(7, "cond.7", "local/simple/conduct", b.build(), {"N": n},
                  {"SIG": _sq(n), "T": _sq(n), "R": _sq(n), "CK": _sq(n)})

def cond9(n: int = 120) -> Kernel:
    """8: local/SIMPLE/CONDUCT loop 9 -- energy update with 5-point data."""
    b = NestBuilder("cond.9", "local/simple/conduct")
    I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
    b.assign(b.ref("E", I, J),
             b.ref("E", I, J)
             + b.ref("SIG", I, J) * (b.ref("T", I + 1, J) - b.ref("T", I, J))
             - b.ref("SIG", I, J - 1)
             * (b.ref("T", I, J) - b.ref("T", I, J - 1)))
    return Kernel(8, "cond.9", "local/simple/conduct", b.build(), {"N": n},
                  {"E": _sq(n), "SIG": _sq(n), "T": _sq(n)})

def dflux16(n: int = 120) -> Kernel:
    """9: Perfect/FLO52/DFLUX loop 16 -- first dissipation flux sweep."""
    b = NestBuilder("dflux.16", "Perfect/FLO52/DFLUX")
    J, I = b.loops(("J", 1, "N"), ("I", 1, "N"))
    b.assign(b.ref("FS", I, J),
             (b.ref("W", I + 1, J) - b.ref("W", I, J))
             * b.ref("RAD", I, J))
    return Kernel(9, "dflux.16", "Perfect/FLO52/DFLUX", b.build(), {"N": n},
                  {"FS": _sq(n), "W": _sq(n), "RAD": _sq(n)})

def dflux17(n: int = 120) -> Kernel:
    """10: Perfect/FLO52/DFLUX loop 17 -- fourth-difference dissipation."""
    b = NestBuilder("dflux.17", "Perfect/FLO52/DFLUX")
    J, I = b.loops(("J", 1, "N"), ("I", 2, "N"))
    b.assign(b.ref("D", I, J),
             b.ref("W", I + 1, J) - 3.0 * b.ref("W", I, J)
             + 3.0 * b.ref("W", I - 1, J) - b.ref("W", I - 2, J))
    return Kernel(10, "dflux.17", "Perfect/FLO52/DFLUX", b.build(), {"N": n},
                  {"D": _sq(n), "W": _sq(n)})

def dflux20(n: int = 120) -> Kernel:
    """11: Perfect/FLO52/DFLUX loop 20 -- flux accumulation."""
    b = NestBuilder("dflux.20", "Perfect/FLO52/DFLUX")
    J, I = b.loops(("J", 1, "N"), ("I", 1, "N"))
    b.assign(b.ref("RS", I, J),
             b.ref("RS", I, J)
             + b.ref("FS", I, J) - b.ref("FS", I - 1, J)
             + b.ref("GS", I, J) - b.ref("GS", I, J - 1))
    return Kernel(11, "dflux.20", "Perfect/FLO52/DFLUX", b.build(), {"N": n},
                  {"RS": _sq(n), "FS": _sq(n), "GS": _sq(n)})

def dmxpy0(n: int = 160) -> Kernel:
    """12: LINPACK dmxpy, (J,I) order -- Y += M x, column sweeps."""
    b = NestBuilder("dmxpy0", "Vector-Matrix Multiply")
    J, I = b.loops(("J", 0, "N"), ("I", 0, "N"))
    b.assign(b.ref("Y", I),
             b.ref("Y", I) + b.ref("X", J) * b.ref("M", I, J))
    return Kernel(12, "dmxpy0", "Vector-Matrix Multiply", b.build(), {"N": n},
                  {"Y": (n + 2,), "X": (n + 2,), "M": _sq(n)})

def dmxpy1(n: int = 160) -> Kernel:
    """13: LINPACK dmxpy, (I,J) order -- Y += M x, row sweeps."""
    b = NestBuilder("dmxpy1", "Vector-Matrix Multiply")
    I, J = b.loops(("I", 0, "N"), ("J", 0, "N"))
    b.assign(b.ref("Y", I),
             b.ref("Y", I) + b.ref("X", J) * b.ref("M", I, J))
    return Kernel(13, "dmxpy1", "Vector-Matrix Multiply", b.build(), {"N": n},
                  {"Y": (n + 2,), "X": (n + 2,), "M": _sq(n)})

def gmtry3(n: int = 160) -> Kernel:
    """14: SPEC/NASA7/GMTRY loop 3 -- Gaussian elimination update."""
    b = NestBuilder("gmtry.3", "SPEC/NASA7/GMTRY")
    I, J = b.loops(("I", 1, "N"), ("J", 0, "N"))
    b.assign(b.ref("RM", I, J),
             b.ref("RM", I, J)
             - b.ref("RM", I - 1, J) * b.ref("PIV", I))
    return Kernel(14, "gmtry.3", "SPEC/NASA7/GMTRY", b.build(), {"N": n},
                  {"RM": _sq(n), "PIV": (n + 2,)})

def mmjik(n: int = 40) -> Kernel:
    """15: matrix multiply, JIK order."""
    b = NestBuilder("mmjik", "Matrix-Matrix Multiply")
    J, I, K = b.loops(("J", 0, "N"), ("I", 0, "N"), ("K", 0, "N"))
    b.assign(b.ref("C", I, J),
             b.ref("C", I, J) + b.ref("A", I, K) * b.ref("B", K, J))
    return Kernel(15, "mmjik", "Matrix-Matrix Multiply", b.build(), {"N": n},
                  {"A": _sq(n), "B": _sq(n), "C": _sq(n)})

def mmjki(n: int = 40) -> Kernel:
    """16: matrix multiply, JKI order (column-major friendly innermost)."""
    b = NestBuilder("mmjki", "Matrix-Matrix Multiply")
    J, K, I = b.loops(("J", 0, "N"), ("K", 0, "N"), ("I", 0, "N"))
    b.assign(b.ref("C", I, J),
             b.ref("C", I, J) + b.ref("A", I, K) * b.ref("B", K, J))
    return Kernel(16, "mmjki", "Matrix-Matrix Multiply", b.build(), {"N": n},
                  {"A": _sq(n), "B": _sq(n), "C": _sq(n)})

def vpenta7(n: int = 120) -> Kernel:
    """17: SPEC/NASA7/VPENTA loop 7 -- pentadiagonal back substitution."""
    b = NestBuilder("vpenta.7", "SPEC/NASA7/VPENTA")
    J, K = b.loops(("J", 0, "N"), ("K", 0, "N"))
    b.assign(b.ref("F", K, J),
             b.ref("F", K, J)
             - b.ref("X", K, J) * b.ref("F", K, J + 1)
             - b.ref("Y", K, J) * b.ref("F", K, J + 2))
    return Kernel(17, "vpenta.7", "SPEC/NASA7/VPENTA", b.build(), {"N": n},
                  {"F": _sq(n), "X": _sq(n), "Y": _sq(n)})

def sor(n: int = 120) -> Kernel:
    """18: successive over-relaxation sweep."""
    b = NestBuilder("sor", "Successive Over Relaxation")
    I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
    b.assign(b.ref("A", I, J),
             0.25 * (b.ref("A", I - 1, J) + b.ref("A", I + 1, J)
                     + b.ref("A", I, J - 1) + b.ref("A", I, J + 1))
             * b.scalar("omega") + b.ref("A", I, J))
    return Kernel(18, "sor", "Successive Over Relaxation", b.build(), {"N": n},
                  {"A": _sq(n)})

def shal(n: int = 96) -> Kernel:
    """19: shallow-water kernel (SWIM loop 100: CU, CV, Z, H updates)."""
    b = NestBuilder("shal", "Shallow Water Kernel")
    I, J = b.loops(("I", 1, "N"), ("J", 1, "N"))
    b.assign(b.ref("CU", I, J),
             0.5 * (b.ref("P", I, J) + b.ref("P", I - 1, J))
             * b.ref("U", I, J))
    b.assign(b.ref("CV", I, J),
             0.5 * (b.ref("P", I, J) + b.ref("P", I, J - 1))
             * b.ref("V", I, J))
    b.assign(b.ref("H", I, J),
             b.ref("P", I, J)
             + 0.25 * (b.ref("U", I, J) * b.ref("U", I, J)
                       + b.ref("V", I, J) * b.ref("V", I, J)))
    return Kernel(19, "shal", "Shallow Water Kernel", b.build(), {"N": n},
                  {"CU": _sq(n), "CV": _sq(n), "H": _sq(n), "P": _sq(n),
                   "U": _sq(n), "V": _sq(n)})

_FACTORIES: tuple[Callable[[], Kernel], ...] = (
    jacobi, afold, btrix1, btrix2, btrix7, collc2, cond7, cond9,
    dflux16, dflux17, dflux20, dmxpy0, dmxpy1, gmtry3, mmjik, mmjki,
    vpenta7, sor, shal,
)

def all_kernels() -> list[Kernel]:
    """The 19 Table 2 loops, in the paper's order."""
    return [factory() for factory in _FACTORIES]

def kernel_by_name(name: str) -> Kernel:
    for factory in _FACTORIES:
        kernel = factory()
        if kernel.name == name:
            return kernel
    raise KeyError(f"unknown kernel {name!r}")
