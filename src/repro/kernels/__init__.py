"""The 19 test loops of Table 2, reconstructed in the IR.

The paper's loops come from SPEC92, Perfect, NAS and local suites; we ship
faithful reconstructions (loop structure, reference patterns, read/write
mix) from their descriptions and the published kernels they name.  Each
kernel carries the workload configuration (sizes, array shapes) used by the
Figure 8/9 simulation harness.
"""

from repro.kernels.suite import Kernel, all_kernels, kernel_by_name

__all__ = ["Kernel", "all_kernels", "kernel_by_name"]
