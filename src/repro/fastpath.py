"""The switch between the optimized and the seed analysis algorithms.

The cold-path optimizations (summed-area tables, shared stream chains,
Bareiss elimination, memoized group tests, pruned search) are exact: they
return bit-identical results to the original algorithms.  The parity fuzz
suite and the cold-analysis benchmark need to *run* those originals, so
every memo layer checks :func:`fast_enabled` and the
:func:`seed_algorithms` context manager flips the whole stack back to the
seed behaviour (including the Fraction elimination path of
:mod:`repro.linalg.matrix`).

Algorithm-level choices that live in signatures -- ``fast=False`` on
:func:`repro.unroll.tables.build_tables` and ``prune=False`` on
:func:`repro.unroll.optimize.search_space` -- are not global state and
must still be passed explicitly; :func:`seed_algorithms` only governs the
cross-cutting caches that have no per-call parameter.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_FAST = True

def fast_enabled() -> bool:
    """True when the optimized paths (and their memo layers) are active."""
    return _FAST

@contextmanager
def seed_algorithms() -> Iterator[None]:
    """Run the seed (pre-optimization) algorithms for the block: Fraction
    elimination, uncached group-reuse tests, unmemoized spatial relates."""
    from repro.linalg.matrix import fraction_elimination

    global _FAST
    previous = _FAST
    _FAST = False
    try:
        with fraction_elimination():
            yield
    finally:
        _FAST = previous
