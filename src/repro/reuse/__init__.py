"""The Wolf-Lam linear-algebra data-reuse model (section 3.4 of the paper).

References are partitioned into *uniformly generated sets* (same array, same
subscript matrix H).  Reuse questions become linear algebra:

* self-temporal reuse space  R_ST = ker(H)
* self-spatial  reuse space  R_SS = ker(H_S), H_S = H with its first row
  zeroed (column-major storage: the first array dimension is contiguous)
* group-temporal: two references r1, r2 reuse each other iff
  ``H x = c2 - c1`` has a solution x in the localized space L
* group-spatial: the same with H_S and the constant difference truncated in
  the first dimension

The partitions (GTS, GSS) and the per-UGS memory-cost formula (Equation 1)
live here; everything is exact rational arithmetic.
"""

from repro.reuse.ugs import UniformlyGeneratedSet, partition_ugs
from repro.reuse.selfreuse import self_spatial_space, self_temporal_space
from repro.reuse.group import (
    GroupSolution,
    group_spatial_partition,
    group_spatial_solution,
    group_temporal_partition,
    group_temporal_solution,
)
from repro.reuse.locality import (
    LocalitySummary,
    innermost_localized_space,
    nest_memory_cost,
    ugs_memory_cost,
)
from repro.reuse.profile import (
    AssocMissModel,
    NestReuseProfile,
    ReferenceProfile,
    ReuseBin,
    reuse_profile,
)

__all__ = [
    "AssocMissModel",
    "GroupSolution",
    "LocalitySummary",
    "NestReuseProfile",
    "ReferenceProfile",
    "ReuseBin",
    "UniformlyGeneratedSet",
    "group_spatial_partition",
    "group_spatial_solution",
    "group_temporal_partition",
    "group_temporal_solution",
    "innermost_localized_space",
    "nest_memory_cost",
    "partition_ugs",
    "reuse_profile",
    "self_spatial_space",
    "self_temporal_space",
    "ugs_memory_cost",
]
