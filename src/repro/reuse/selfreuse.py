"""Self-temporal and self-spatial reuse vector spaces.

A reference ``A[H i + c]`` touches the same element at iterations i and
i + x exactly when ``H x = 0``; the kernel of H is therefore the
*self-temporal reuse vector space* R_ST.  Dropping the first (contiguous)
array dimension gives H_S, whose kernel R_SS is the *self-spatial* space:
directions along which consecutive accesses stay within the same column,
i.e. within cache-line reach.  R_ST is always a subspace of R_SS.
"""

from __future__ import annotations

from repro.linalg import Matrix, VectorSpace

def self_temporal_space(matrix: Matrix) -> VectorSpace:
    """R_ST = ker(H)."""
    return VectorSpace(matrix.nullspace(), matrix.ncols)

def self_spatial_space(matrix: Matrix) -> VectorSpace:
    """R_SS = ker(H_S) where H_S zeroes the first row (column-major)."""
    return VectorSpace(matrix.with_zero_row(0).nullspace(), matrix.ncols)

def has_self_temporal(matrix: Matrix, localized: VectorSpace) -> bool:
    """Does the reference reuse the *same element* inside the localized
    iteration space?"""
    return not self_temporal_space(matrix).intersect(localized).is_zero()

def has_self_spatial(matrix: Matrix, localized: VectorSpace) -> bool:
    """Does the reference stay on the same cache line along some localized
    direction (beyond pure temporal reuse)?"""
    return not self_spatial_space(matrix).intersect(localized).is_zero()

def localized_temporal_dim(matrix: Matrix, localized: VectorSpace) -> int:
    """dim(R_ST ∩ L): how many localized dimensions amortize the access."""
    return self_temporal_space(matrix).intersect(localized).dim
