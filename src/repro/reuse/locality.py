"""The per-UGS memory-cost model (Equation 1 of the paper).

For a uniformly generated set with ``g_T`` group-temporal sets and ``g_S``
group-spatial sets over a localized vector space L, with cache-line size ℓ
(in words) and symbolic trip count N for localized loops:

    accesses/iteration = base * (g_S + (g_T - g_S) / ℓ)

    base = 1 / N^k   if k = dim(R_ST ∩ L) > 0   (self-temporal)
         = 1 / ℓ     elif dim(R_SS ∩ L) > 0     (self-spatial)
         = 1         otherwise

Each group-spatial set pays one leading access stream; the extra
group-temporal sets sharing its lines only pay the line-boundary fraction.
Self reuse scales the whole set: a self-temporal set is touched once per
N iterations of the localized loops; a self-spatial one misses once per
line.  (The scanned Equation 1 is unreadable; see DESIGN.md for the
provenance of this reconstruction.)
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.ir.nodes import LoopNest
from repro.linalg import VectorSpace
from repro.reuse.group import group_spatial_partition, group_temporal_partition
from repro.reuse.selfreuse import (
    has_self_spatial,
    localized_temporal_dim,
)
from repro.reuse.ugs import UniformlyGeneratedSet, partition_ugs

#: Symbolic trip count used to amortize self-temporal reuse.  Any large
#: value works; costs involving it vanish against per-iteration terms.
DEFAULT_TRIP = 100

def innermost_localized_space(nest: LoopNest) -> VectorSpace:
    """The default localized space: the innermost loop only."""
    return VectorSpace.spanned_by_axes([nest.depth - 1], nest.depth)

@dataclass(frozen=True)
class LocalitySummary:
    """Reuse accounting for one UGS under a localized space."""

    ugs: UniformlyGeneratedSet
    g_t: int
    g_s: int
    self_temporal_dim: int
    self_spatial: bool
    cost: Fraction  # memory accesses per iteration (Equation 1)

def ugs_memory_cost(ugs: UniformlyGeneratedSet, localized: VectorSpace,
                    line_size: int, trip: int = DEFAULT_TRIP) -> LocalitySummary:
    """Equation 1 for one uniformly generated set."""
    gts = group_temporal_partition(ugs, localized)
    gss = group_spatial_partition(ugs, localized, line_size)
    g_t, g_s = len(gts), len(gss)
    k = localized_temporal_dim(ugs.matrix, localized)
    spatial = has_self_spatial(ugs.matrix, localized)
    if k > 0:
        base = Fraction(1, trip ** k)
    elif spatial:
        base = Fraction(1, line_size)
    else:
        base = Fraction(1)
    cost = base * (Fraction(g_s) + Fraction(g_t - g_s, line_size))
    return LocalitySummary(ugs, g_t, g_s, k, spatial, cost)

def nest_memory_cost(nest: LoopNest, localized: VectorSpace | None = None,
                     line_size: int = 4,
                     trip: int = DEFAULT_TRIP,
                     ugs: list[UniformlyGeneratedSet] | None = None,
                     ) -> tuple[Fraction, list[LocalitySummary]]:
    """Total Equation-1 cost of a nest plus the per-UGS breakdown.

    ``ugs`` optionally supplies a precomputed partition; callers scoring a
    nest under several localized spaces partition once and reuse it.
    """
    localized = localized if localized is not None else innermost_localized_space(nest)
    sets = partition_ugs(nest) if ugs is None else ugs
    summaries = [ugs_memory_cost(group, localized, line_size, trip)
                 for group in sets]
    total = sum((s.cost for s in summaries), Fraction(0))
    return total, summaries

def loop_locality_scores(nest: LoopNest, line_size: int = 4,
                         trip: int = DEFAULT_TRIP) -> list[Fraction]:
    """Per-loop locality benefit used to pick the loops to unroll (§4.5).

    Score of loop k = the Equation-1 cost with the localized space extended
    by loop k's direction, subtracted from the innermost-only cost: loops
    whose localization removes the most memory cost carry the most reuse,
    and are the best unroll-and-jam candidates.
    """
    sets = partition_ugs(nest)  # one partition for all depth+1 scorings
    base_space = innermost_localized_space(nest)
    base_cost, _ = nest_memory_cost(nest, base_space, line_size, trip,
                                    ugs=sets)
    scores: list[Fraction] = []
    for level in range(nest.depth):
        if level == nest.depth - 1:
            scores.append(Fraction(0))  # the innermost loop is never unrolled
            continue
        extended = base_space.sum(
            VectorSpace.spanned_by_axes([level], nest.depth))
        cost, _ = nest_memory_cost(nest, extended, line_size, trip, ugs=sets)
        scores.append(base_cost - cost)
    return scores
