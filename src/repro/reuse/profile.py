"""Static per-reference reuse-distance profiles.

The Equation-1 model (``reuse/locality.py``) answers *whether* a reference
reuses data; this pass answers *how far apart* the two uses are, which is
what a set-associative cache actually cares about.  Following "Static
Reuse Profile Estimation for Array Applications" (PAPERS.md), the
distances come from the same UGS/localized-vector-space machinery rather
than from tracing:

* Every reuse of a reference ``A[H i + c]`` is a motion ``x`` in iteration
  space with ``H x = 0`` (self-temporal), ``H_S x = 0`` (self-spatial), or
  ``H x = c_other - c`` (group reuse).  With uniform symbolic trip count
  ``N`` per loop, the *delay* of that motion -- how many innermost
  iterations elapse between the two touches -- is the mixed-radix value
  ``sum_j x_j * N^(depth-1-j)``.
* The nest touches a near-constant number of *new* cache lines per
  innermost iteration: the Equation-1 cost under the innermost localized
  space (``lines_per_iteration``).  A reuse with delay ``D`` therefore has
  reuse distance ``D * lines_per_iteration`` distinct lines.
* Each reference occurrence gets a small histogram: the fraction of its
  accesses that reuse at the spatial distance (same line, earlier touch),
  the line-leading fraction that must wait for the temporal distance, and
  a cold residue at infinite distance.

Feeding these distances to :func:`repro.machine.cache.miss_probability`
turns the binary hit/miss charge into a set-associative miss probability;
``benchmarks/bench_reuse_profile.py`` validates the whole chain against
the executable simulator (docs/REUSE.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.ir.matrixform import RefOccurrence, constant_vector
from repro.ir.nodes import LoopNest
from repro.linalg import VectorSpace
from repro.machine.cache import CacheSpec, miss_probability
from repro.reuse.group import _solve_in_space, group_temporal_solution
from repro.reuse.locality import (
    DEFAULT_TRIP,
    innermost_localized_space,
    nest_memory_cost,
)
from repro.reuse.selfreuse import self_spatial_space, self_temporal_space
from repro.reuse.ugs import UniformlyGeneratedSet, partition_ugs

@dataclass(frozen=True)
class ReuseBin:
    """One slice of a reference's accesses at a common reuse distance.

    ``distance`` counts distinct cache lines between the two uses
    (``None`` = no prior use, a cold access).  ``fraction`` is the share
    of the reference's dynamic accesses in this bin; a reference's bins
    sum to 1.  ``kind`` records which mechanism produced the reuse
    (``self-temporal``, ``group-temporal``, ``self-spatial``,
    ``group-spatial``, or ``cold``) and ``delay`` its distance in
    innermost-loop iterations.
    """

    distance: float | None
    fraction: float
    kind: str
    delay: float | None = None

    def to_dict(self) -> dict:
        return {"distance": self.distance, "fraction": self.fraction,
                "kind": self.kind, "delay": self.delay}

@dataclass(frozen=True)
class ReferenceProfile:
    """The reuse-distance histogram of one reference occurrence."""

    array: str
    ref: str
    position: int
    is_write: bool
    bins: tuple[ReuseBin, ...]

    def miss_probability(self, spec: CacheSpec) -> float:
        """Expected miss probability of one dynamic access."""
        return sum(b.fraction * miss_probability(b.distance, spec)
                   for b in self.bins)

    def to_dict(self) -> dict:
        return {"array": self.array, "ref": self.ref,
                "position": self.position, "is_write": self.is_write,
                "bins": [b.to_dict() for b in self.bins]}

@dataclass(frozen=True)
class NestReuseProfile:
    """Reuse-distance profile of a whole nest.

    ``trip`` is the per-loop trip count the delays were scaled with; the
    profile of a nest about to run with ``N = 40`` should be built with
    ``trip=40``.  ``lines_per_iteration`` converts delays (iterations)
    into distances (distinct lines).
    """

    nest: str
    depth: int
    trip: int
    line_size: int
    lines_per_iteration: float
    refs: tuple[ReferenceProfile, ...]

    def miss_ratio(self, spec: CacheSpec) -> float:
        """Predicted miss ratio when every occurrence issues one access
        per innermost iteration (the ``scalar_replace=False`` simulator
        baseline)."""
        if not self.refs:
            return 0.0
        total = sum(ref.miss_probability(spec) for ref in self.refs)
        return total / len(self.refs)

    def misses_per_iteration(self, spec: CacheSpec) -> float:
        """Expected cache misses per innermost iteration."""
        return sum(ref.miss_probability(spec) for ref in self.refs)

    def conflict_probability(self, spec: CacheSpec) -> float:
        """P(an access the binary model calls a hit actually misses).

        Mass at infinite distance is the binary model's miss charge; the
        finite-distance mass is its hit charge.  The ratio of expected
        conflict/capacity misses inside that hit mass is the correction
        the profile adds on top of Equation 1.
        """
        hit_mass = conflict = 0.0
        for ref in self.refs:
            for b in ref.bins:
                if b.distance is None:
                    continue
                hit_mass += b.fraction
                conflict += b.fraction * miss_probability(b.distance, spec)
        if hit_mass <= 0.0:
            return 0.0
        return min(1.0, conflict / hit_mass)

    def cold_fraction(self) -> float:
        """Fraction of accesses with no prior use at any distance."""
        if not self.refs:
            return 0.0
        cold = sum(b.fraction for ref in self.refs for b in ref.bins
                   if b.distance is None)
        return cold / len(self.refs)

    def distance_quantile(self, q: float) -> float | None:
        """The ``q``-quantile of the finite reuse-distance distribution
        (``None`` when every access is cold)."""
        mass: list[tuple[float, float]] = sorted(
            (b.distance, b.fraction) for ref in self.refs for b in ref.bins
            if b.distance is not None and b.fraction > 0)
        total = sum(f for _, f in mass)
        if total <= 0.0:
            return None
        acc = 0.0
        for distance, fraction in mass:
            acc += fraction
            if acc >= q * total:
                return distance
        return mass[-1][0]

    def fraction_under(self, capacity_lines: float) -> float:
        """Fraction of accesses whose reuse distance fits in
        ``capacity_lines`` (e.g. the L1's line count): upper-bounds the
        hit ratio of a fully associative cache of that size."""
        if not self.refs:
            return 0.0
        under = sum(b.fraction for ref in self.refs for b in ref.bins
                    if b.distance is not None and b.distance < capacity_lines)
        return under / len(self.refs)

    def carried_fractions(self) -> list[float]:
        """Per-level fraction of reuse mass carried at each loop level
        (delay in [N^(d-1-k), N^(d-k)) is carried by loop k)."""
        out = [0.0] * self.depth
        total = 0.0
        for ref in self.refs:
            for b in ref.bins:
                if b.delay is None or b.fraction <= 0:
                    continue
                level = self.depth - 1
                for k in range(self.depth):
                    if b.delay < float(self.trip) ** (self.depth - 1 - k):
                        continue
                    level = k
                    break
                out[level] += b.fraction
                total += b.fraction
        if total > 0:
            out = [x / total for x in out]
        return out

    def to_dict(self) -> dict:
        """JSON-safe document (the serve layer's ``reuse_profile``)."""
        return {
            "nest": self.nest,
            "depth": self.depth,
            "trip": self.trip,
            "line_size": self.line_size,
            "lines_per_iteration": round(self.lines_per_iteration, 6),
            "cold_fraction": round(self.cold_fraction(), 6),
            "refs": [ref.to_dict() for ref in self.refs],
        }

class AssocMissModel:
    """Prices a search point's misses for one concrete cache geometry.

    Plugs into :func:`repro.balance.loop_balance.loop_balance` via its
    ``miss_model`` parameter.  The Equation-1 charge (``point.cache_cost``)
    stays as the capacity/compulsory floor; the accesses Equation 1 calls
    hits additionally pay the profile's set-conflict probability for this
    geometry, so candidate unroll vectors are ranked by their *expected*
    miss count on an associativity-limited cache rather than the binary
    hit/miss idealization.
    """

    def __init__(self, profile: NestReuseProfile, spec: CacheSpec):
        self.profile = profile
        self.spec = spec
        # Rational so the balance arithmetic (and its tie-breaking) stays
        # exact and deterministic.
        self.conflict = Fraction(
            round(profile.conflict_probability(spec) * 10 ** 9), 10 ** 9)

    @staticmethod
    def for_machine(profile: NestReuseProfile, machine) -> "AssocMissModel":
        return AssocMissModel(profile, CacheSpec.for_machine(machine))

    def misses(self, point) -> Fraction:
        eq1 = point.cache_cost
        would_hit = max(point.memory_ops - eq1, Fraction(0))
        return eq1 + would_hit * self.conflict

def _delay_of(vector: Sequence[Fraction | float], trip: int,
              depth: int) -> float:
    """Innermost iterations elapsed over an iteration-space motion: the
    mixed-radix value of the vector with uniform radix ``trip``."""
    total = 0.0
    for j, x in enumerate(vector):
        total += float(x) * float(trip) ** (depth - 1 - j)
    return total

def _integer_generators(space: VectorSpace) -> list[tuple[Fraction, ...]]:
    """The basis, scaled to primitive integer vectors."""
    out = []
    for vec in space.basis:
        denom = 1
        for x in vec:
            denom = denom * x.denominator // math.gcd(denom, x.denominator)
        ints = [int(x * denom) for x in vec]
        g = 0
        for v in ints:
            g = math.gcd(g, abs(v))
        if g > 1:
            ints = [v // g for v in ints]
        out.append(tuple(Fraction(v) for v in ints))
    return out

def _temporal_delay(ugs: UniformlyGeneratedSet, member: RefOccurrence,
                    full: VectorSpace, trip: int, depth: int) -> float | None:
    """Smallest delay at which ``member`` re-touches an element some
    earlier access (its own or a UGS sibling's) already touched."""
    best: float | None = None

    def consider(delay: float) -> None:
        nonlocal best
        if best is None or delay < best:
            best = delay

    for gen in _integer_generators(self_temporal_space(ugs.matrix)):
        delay = abs(_delay_of(gen, trip, depth))
        consider(max(delay, 1.0))
    c_m = constant_vector(member.ref)
    for other in ugs.members:
        if other is member:
            continue
        sol = group_temporal_solution(ugs, member, other, full)
        if not sol:
            continue
        # sol.vector solves H x = c_other - c_member: member's access at
        # iteration i matches other's at i - x, so member follows other
        # iff x is a *positive* delay (or zero with other textually first).
        delay = _delay_of(sol.vector, trip, depth)
        if delay > 0:
            consider(delay)
        elif delay == 0 and (constant_vector(other.ref) == c_m
                             and other.position < member.position):
            consider(0.0)
    return best

def _spatial_delay(ugs: UniformlyGeneratedSet, member: RefOccurrence,
                   full: VectorSpace, trip: int, depth: int,
                   line_size: int) -> tuple[float, float] | None:
    """Smallest delay at which ``member`` re-touches a *line* an earlier
    access touched, plus the fraction of accesses that lead onto a fresh
    line anyway (the miss fraction of the spatial mechanism)."""
    best: tuple[float, float] | None = None
    temporal = self_temporal_space(ugs.matrix)

    def consider(delay: float, miss_frac: float) -> None:
        # Mechanisms are alternatives; prefer the one covering the most
        # accesses (lowest line-leading fraction), then the shortest
        # delay.  The uncovered fraction usually ends up cold, so
        # coverage dominates the expected miss contribution.
        nonlocal best
        if best is None or (miss_frac, delay) < (best[1], best[0]):
            best = (delay, miss_frac)

    for gen in _integer_generators(self_spatial_space(ugs.matrix)):
        if temporal.contains(gen):
            continue  # pure temporal motion, handled there
        step = abs(float(ugs.matrix.matvec(list(gen))[0]))
        if step == 0.0 or step >= line_size:
            continue
        delay = abs(_delay_of(gen, trip, depth))
        consider(max(delay, 1.0), step / line_size)
    c_m = constant_vector(member.ref)
    for other in ugs.members:
        if other is member:
            continue
        delta = tuple(b - a for a, b in zip(c_m, constant_vector(other.ref)))
        truncated = (0,) + delta[1:]
        sol = _solve_in_space(ugs.spatial_matrix, truncated, full)
        if not sol:
            continue
        moved = float(ugs.matrix.matvec(list(sol.vector))[0])
        residual = abs(float(delta[0]) - moved)
        if residual == 0.0 or residual >= line_size:
            # Zero residual is group-*temporal* (counted there); a full
            # line apart never shares one.
            continue
        delay = _delay_of(sol.vector, trip, depth)
        if delay > 0:
            consider(delay, residual / line_size)
        elif delay == 0 and other.position < member.position:
            consider(0.0, residual / line_size)
    return best

def reuse_profile(nest: LoopNest, line_size: int = 4,
                  trip: int = DEFAULT_TRIP,
                  ugs: Sequence[UniformlyGeneratedSet] | None = None,
                  ) -> NestReuseProfile:
    """The static reuse-distance profile of ``nest``.

    ``trip`` should match the trip count the nest will actually run with
    when the profile is compared against a measurement; ``ugs`` optionally
    reuses a precomputed partition (e.g. the engine's memoized artifacts).
    """
    depth = nest.depth
    full = VectorSpace.full(depth)
    sets = list(partition_ugs(nest)) if ugs is None else list(ugs)
    lpi_fraction, _ = nest_memory_cost(nest, innermost_localized_space(nest),
                                       line_size, trip, ugs=sets)
    lpi = max(float(lpi_fraction), 1.0 / line_size)
    refs: list[ReferenceProfile] = []
    for group in sets:
        for member in group.members:
            d_t = _temporal_delay(group, member, full, trip, depth)
            spatial = _spatial_delay(group, member, full, trip, depth,
                                     line_size)
            bins: list[ReuseBin] = []
            if d_t is not None and (spatial is None or d_t <= spatial[0]):
                bins.append(ReuseBin(lpi * d_t, 1.0, "temporal", d_t))
            elif spatial is not None:
                d_s, miss_frac = spatial
                hit_frac = 1.0 - miss_frac
                if hit_frac > 0:
                    bins.append(ReuseBin(lpi * d_s, hit_frac, "spatial", d_s))
                if miss_frac > 0:
                    if d_t is not None:
                        bins.append(ReuseBin(lpi * d_t, miss_frac,
                                             "temporal", d_t))
                    else:
                        bins.append(ReuseBin(None, miss_frac, "cold", None))
            else:
                bins.append(ReuseBin(None, 1.0, "cold", None))
            refs.append(ReferenceProfile(
                array=member.array, ref=member.ref.pretty(),
                position=member.position, is_write=member.is_write,
                bins=tuple(bins)))
    refs.sort(key=lambda r: r.position)
    return NestReuseProfile(nest=nest.name, depth=depth, trip=trip,
                            line_size=line_size, lines_per_iteration=lpi,
                            refs=tuple(refs))
