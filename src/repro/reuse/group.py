"""Group-temporal and group-spatial reuse partitions (GTS / GSS).

Two references of one UGS have group-temporal reuse iff ``H x = c2 - c1``
has a solution x inside the localized vector space L; group-spatial reuse
uses H_S and ignores the first (contiguous) dimension of the constant
difference.  Partitions are computed by union-find over the pairwise tests;
each resulting group is led by its lexicographically smallest member.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache

from repro.fastpath import fast_enabled
from repro.ir.matrixform import RefOccurrence, constant_vector
from repro.linalg import Matrix, VectorSpace
from repro.reuse.ugs import UniformlyGeneratedSet

@dataclass(frozen=True)
class GroupSolution:
    """Outcome of a group-reuse equation ``H x = Δc`` restricted to L."""

    exists: bool
    vector: tuple[Fraction, ...] = ()  # a witness x in L (when it exists)

    def __bool__(self) -> bool:
        return self.exists

NO_GROUP_REUSE = GroupSolution(exists=False)

# The group tests are pure functions of hashable values (Matrix and
# VectorSpace are immutable), and the locality scorer re-asks them for the
# same (H, Δc, L) triples across levels and structurally similar nests, so
# both predicates are memoized.  Seed mode (repro.fastpath.seed_algorithms)
# bypasses the caches so the reference measurement pays the original cost.

def _solve_in_space(matrix: Matrix, delta: tuple[int, ...],
                    localized: VectorSpace) -> GroupSolution:
    if fast_enabled():
        return _solve_in_space_cached(matrix, delta, localized)
    return _solve_in_space_impl(matrix, delta, localized)

def _solve_in_space_impl(matrix: Matrix, delta: tuple[int, ...],
                         localized: VectorSpace) -> GroupSolution:
    """Does ``matrix @ x = delta`` admit a solution x in ``localized``?"""
    if all(d == 0 for d in delta):
        return GroupSolution(True, tuple(Fraction(0) for _ in range(matrix.ncols)))
    if localized.is_zero():
        return NO_GROUP_REUSE
    basis_cols = localized.basis  # rows of basis vectors
    restricted = Matrix.from_columns([matrix.matvec(b) for b in basis_cols],
                                     nrows=matrix.nrows)
    sol = restricted.solve(list(delta))
    if not sol:
        return NO_GROUP_REUSE
    if not _integral_solution_in_space(matrix, delta, localized):
        # Reuse happens at whole iterations: a solution forced to be
        # fractional (A(2K) vs A(2K+1)) is no reuse at all.
        return NO_GROUP_REUSE
    witness = [Fraction(0)] * matrix.ncols
    for coef, basis_vec in zip(sol.particular, basis_cols):
        for i, x in enumerate(basis_vec):
            witness[i] += coef * x
    return GroupSolution(True, tuple(witness))

_solve_in_space_cached = lru_cache(maxsize=65536)(_solve_in_space_impl)

def _integral_solution_in_space(matrix: Matrix, delta: tuple[int, ...],
                                localized: VectorSpace) -> bool:
    """Does ``matrix @ x = delta`` have an *integer* solution x in L?

    Membership in L is encoded as annihilator equations and the stacked
    integer system solved exactly over the Hermite normal form.
    """
    from repro.linalg.lattice import annihilator_rows, integer_solvable

    ann = annihilator_rows(localized.basis, matrix.ncols)
    stacked = matrix.stack(ann) if ann.nrows else matrix
    rhs = list(delta) + [0] * ann.nrows
    return integer_solvable(stacked, rhs)

def spatial_constants_related(matrix: Matrix, delta: tuple[int, ...],
                              localized: VectorSpace,
                              line_size: int | None) -> bool:
    if fast_enabled():
        return _spatial_constants_related_cached(matrix, delta, localized,
                                                 line_size)
    return _spatial_constants_related_impl(matrix, delta, localized, line_size)

def _spatial_constants_related_impl(matrix: Matrix, delta: tuple[int, ...],
                                    localized: VectorSpace,
                                    line_size: int | None) -> bool:
    """The canonical group-spatial test between two constant vectors of a
    UGS: does ``H_S x = trunc(delta)`` have a solution x in L whose
    *minimal achievable* first-dimension residual stays within a line?

    The residual is minimized over the whole solution set: if any
    homogeneous direction of the restricted system moves the first
    dimension, the residual can be driven to zero (the localized motion
    can line the two references up).  This keeps the predicate independent
    of which witness the solver happens to return.
    """
    spatial = matrix.with_zero_row(0)
    truncated = list(delta)
    truncated[0] = 0
    if localized.is_zero():
        if any(truncated):
            return False
        residual = abs(Fraction(delta[0]))
        return line_size is None or residual < line_size
    basis_cols = localized.basis
    restricted = Matrix.from_columns(
        [spatial.matvec(b) for b in basis_cols], nrows=matrix.nrows)
    sol = restricted.solve(truncated)
    if not sol:
        return False
    if not _integral_solution_in_space(spatial, tuple(truncated), localized):
        return False
    if line_size is None:
        return True
    # First-dimension motion of the particular solution through full H.
    moved = Fraction(0)
    for coef, basis_vec in zip(sol.particular, basis_cols):
        row0 = matrix.matvec(basis_vec)[0]
        moved += coef * row0
    # Homogeneous (integer-step) freedom moves the first dimension on a
    # lattice; fold the residual into it and take the nearest point.
    images = []
    for hom in sol.homogeneous:
        row0 = Fraction(0)
        for coef, basis_vec in zip(hom, basis_cols):
            row0 += coef * matrix.matvec(basis_vec)[0]
        if row0 != 0:
            images.append(abs(row0))
    residual = abs(Fraction(delta[0]) - moved)
    if images:
        lattice = images[0]
        for image in images[1:]:
            lattice = _fraction_gcd(lattice, image)
        folded = residual - lattice * (residual / lattice).__floor__()
        residual = min(folded, abs(lattice - folded))
    return residual < line_size

_spatial_constants_related_cached = lru_cache(maxsize=65536)(
    _spatial_constants_related_impl)

def _fraction_gcd(a: Fraction, b: Fraction) -> Fraction:
    from math import gcd

    num = gcd(a.numerator * b.denominator, b.numerator * a.denominator)
    return Fraction(num, a.denominator * b.denominator)

def _delta(c_from: tuple[int, ...], c_to: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(b - a for a, b in zip(c_from, c_to))

def group_temporal_solution(ugs: UniformlyGeneratedSet,
                            a: RefOccurrence, b: RefOccurrence,
                            localized: VectorSpace) -> GroupSolution:
    """Group-temporal test between two members of one UGS."""
    delta = _delta(constant_vector(a.ref), constant_vector(b.ref))
    return _solve_in_space(ugs.matrix, delta, localized)

def group_spatial_solution(ugs: UniformlyGeneratedSet,
                           a: RefOccurrence, b: RefOccurrence,
                           localized: VectorSpace,
                           line_size: int | None = None) -> GroupSolution:
    """Group-spatial test: first dimension truncated from both H and Δc.

    ``line_size`` optionally caps the residual first-dimension offset: two
    references whose contiguous-dimension distance is at least a full line
    never share one (a refinement over the pure Wolf-Lam definition; pass
    None for the textbook behaviour).  The residual is canonical -- the
    minimum over the whole solution set -- so the outcome never depends on
    an arbitrary witness (see :func:`spatial_constants_related`).
    """
    delta_full = _delta(constant_vector(a.ref), constant_vector(b.ref))
    if spatial_constants_related(ugs.matrix, delta_full, localized,
                                 line_size):
        return GroupSolution(True,
                             tuple(Fraction(0) for _ in range(ugs.matrix.ncols)))
    return NO_GROUP_REUSE

class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        while self.parent[i] != i:
            self.parent[i] = self.parent[self.parent[i]]
            i = self.parent[i]
        return i

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[max(ri, rj)] = min(ri, rj)

def _partition(ugs: UniformlyGeneratedSet, related) -> list[tuple[RefOccurrence, ...]]:
    members = ugs.members
    uf = _UnionFind(len(members))
    for i in range(len(members)):
        for j in range(i + 1, len(members)):
            if related(members[i], members[j]):
                uf.union(i, j)
    groups: dict[int, list[RefOccurrence]] = {}
    for i, member in enumerate(members):
        groups.setdefault(uf.find(i), []).append(member)
    # Members are already in lexicographic order, so each group is too and
    # group order follows each group's leader.
    return [tuple(groups[root]) for root in sorted(groups)]

def group_temporal_partition(ugs: UniformlyGeneratedSet,
                             localized: VectorSpace) -> list[tuple[RefOccurrence, ...]]:
    """The GTS partition of a UGS; each group in lexicographic order."""
    return _partition(
        ugs, lambda a, b: bool(group_temporal_solution(ugs, a, b, localized)))

def group_spatial_partition(ugs: UniformlyGeneratedSet,
                            localized: VectorSpace,
                            line_size: int | None = None) -> list[tuple[RefOccurrence, ...]]:
    """The GSS partition of a UGS.

    Group-temporal reuse implies group-spatial reuse, so every GSS is a
    union of GTSs.
    """
    return _partition(
        ugs, lambda a, b: bool(group_spatial_solution(ugs, a, b, localized,
                                                      line_size)))

def group_leaders(groups: list[tuple[RefOccurrence, ...]]) -> list[RefOccurrence]:
    return [group[0] for group in groups]
