"""Partitioning references into uniformly generated sets (Definition 1).

Two references belong to the same UGS when they name the same array and
share the subscript matrix H *and* the symbolic (parameter) parts of their
constant vectors.  The last condition is an engineering refinement: the
paper's constant vectors are integer, so two references whose offsets differ
by an unknown symbolic amount (``A(I)`` vs ``A(I+N)``) cannot have a known
reuse distance and must not share a set.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.ir.matrixform import (
    RefOccurrence,
    constant_vector,
    occurrences,
    param_signature,
    reference_matrix,
)
from repro.ir.nodes import LoopNest
from repro.linalg import Matrix

@dataclass(frozen=True)
class UniformlyGeneratedSet:
    """One UGS: the shared (array, H) plus the member occurrences.

    Members are stored in lexicographically increasing order of their
    constant vectors (ties broken by textual position), the order every
    table algorithm of the paper assumes.
    """

    array: str
    matrix: Matrix  # H, one row per array dimension
    members: tuple[RefOccurrence, ...]
    index_names: tuple[str, ...]

    @cached_property
    def spatial_matrix(self) -> Matrix:
        """H_S: first (contiguous, column-major) dimension dropped."""
        return self.matrix.with_zero_row(0)

    def constants(self) -> list[tuple[int, ...]]:
        return [constant_vector(m.ref) for m in self.members]

    @property
    def size(self) -> int:
        return len(self.members)

    def pretty(self) -> str:
        refs = ", ".join(m.pretty() for m in self.members)
        return f"UGS[{self.array}: {refs}]"

def _ugs_key(occ: RefOccurrence, index_names: tuple[str, ...]):
    return (occ.array,
            reference_matrix(occ.ref, index_names),
            param_signature(occ.ref))

def partition_ugs(nest: LoopNest) -> list[UniformlyGeneratedSet]:
    """Partition all occurrences of a nest into uniformly generated sets.

    The result is ordered by first textual appearance; members inside each
    set follow lexicographic constant-vector order.
    """
    index_names = nest.index_names
    groups: dict[object, list[RefOccurrence]] = {}
    order: list[object] = []
    for occ in occurrences(nest):
        key = _ugs_key(occ, index_names)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(occ)

    sets = []
    for key in order:
        members = sorted(groups[key],
                         key=lambda o: (constant_vector(o.ref), o.position))
        array, matrix, _ = key
        sets.append(UniformlyGeneratedSet(array, matrix, tuple(members),
                                          index_names))
    return sets
