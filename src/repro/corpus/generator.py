"""Seeded generator of scientific-style loop nests.

Routines are drawn from a few archetypes observed across the suites the
paper measures (stencil sweeps, reductions, copies/scalings, elimination
updates, gather-style reads).  The proportions are tunable through
:class:`CorpusConfig`; the defaults produce the qualitative Table 1
picture: read-heavy numerical loops whose dependence graphs are dominated
by input dependences, with a long tail of write-heavy routines where they
are rare.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.ir.builder import E, NestBuilder
from repro.ir.nodes import LoopNest

@dataclass(frozen=True)
class CorpusConfig:
    """Knobs for the synthetic corpus."""

    routines: int = 1187
    seed: int = 1997
    max_depth: int = 3
    max_statements: int = 4
    #: archetype weights: (stencil, reduction, copy, update, gather, scale)
    weights: tuple[float, ...] = (0.34, 0.10, 0.12, 0.16, 0.08, 0.20)

def _index_exprs(b: NestBuilder, depth: int):
    names = ["I", "J", "K"][:depth]
    specs = [(name, 1, "N") for name in names]
    return b.loops(*specs)

def _stencil(b: NestBuilder, rng: random.Random, idx) -> None:
    """Read-heavy relaxation: one write, 3-7 shifted reads of one array."""
    reads = rng.randint(3, 7)
    src = rng.choice(["U", "V", "W"])
    terms: list[E] = []
    seen = set()
    for _ in range(reads):
        offsets = tuple(rng.randint(-2, 2) for _ in idx)
        if offsets in seen:
            continue
        seen.add(offsets)
        terms.append(b.ref(src, *(iv + off for iv, off in zip(idx, offsets))))
    if not terms:
        terms.append(b.ref(src, *idx))
    rhs = terms[0]
    for term in terms[1:]:
        rhs = rhs + term
    b.assign(b.ref("OUT", *idx), rhs * 0.25)

def _reduction(b: NestBuilder, rng: random.Random, idx) -> None:
    """Accumulate into a lower-dimensional array: reads dominate."""
    target_dims = max(1, len(idx) - 1)
    b.assign(b.ref("ACC", *idx[:target_dims]),
             b.ref("ACC", *idx[:target_dims])
             + b.ref("X", *idx) * b.ref("Y", *idx))

def _copy(b: NestBuilder, rng: random.Random, idx) -> None:
    """Copy/scale: one read, one write -- no input dependences at all."""
    b.assign(b.ref("DST", *idx), b.ref("SRC", *idx) * 2.0)

def _update(b: NestBuilder, rng: random.Random, idx) -> None:
    """Elimination-style in-place update with a carried read."""
    lag = rng.randint(1, 2)
    shifted = [iv for iv in idx]
    shifted[0] = shifted[0] - lag
    b.assign(b.ref("A", *idx),
             b.ref("A", *idx) - b.ref("A", *shifted) * b.ref("P", idx[0]))

def _gather(b: NestBuilder, rng: random.Random, idx) -> None:
    """Several invariant/partial reads feeding one write."""
    parts = [b.ref("T", *idx)]
    for _ in range(rng.randint(1, 3)):
        keep = rng.randint(1, len(idx))
        # rank is part of the array identity: C1_2D is always 2-D etc.
        name = f"{rng.choice(['C1', 'C2'])}_{keep}D"
        parts.append(b.ref(name, *idx[:keep]))
    rhs = parts[0]
    for part in parts[1:]:
        rhs = rhs * part
    b.assign(b.ref("G", *idx), rhs)

def _scale(b: NestBuilder, rng: random.Random, idx) -> None:
    """In-place scaling: anti/output dependences only, zero input share."""
    factor = rng.choice([0.5, 2.0, 1.5])
    b.assign(b.ref("S", *idx), b.ref("S", *idx) * factor)

_ARCHETYPES = (_stencil, _reduction, _copy, _update, _gather, _scale)

def generate_routine(rng: random.Random, config: CorpusConfig,
                     number: int) -> LoopNest:
    """One synthetic routine: a loop nest with 1..max_statements statements
    drawn from the archetype mix."""
    depth = rng.randint(1, config.max_depth)
    b = NestBuilder(f"routine{number:04d}")
    idx = list(_index_exprs(b, depth))
    statements = rng.randint(1, config.max_statements)
    for _ in range(statements):
        archetype = rng.choices(_ARCHETYPES, weights=config.weights)[0]
        archetype(b, rng, idx)
    return b.build()

def iter_corpus(config: CorpusConfig | None = None,
                count: int | None = None) -> "Iterator[LoopNest]":
    """Stream the corpus one routine at a time.

    The generator form of :func:`generate_corpus` for corpus sizes that
    must not be held in memory (the 100k-nest streaming experiments feed
    this straight into ``AnalysisEngine.optimize_stream``).  ``count``
    overrides ``config.routines``; the draw sequence is identical, so for
    one seed a shorter run is an exact prefix of a longer one and
    ``list(iter_corpus(config)) == generate_corpus(config)``.
    """
    config = config or CorpusConfig()
    total = config.routines if count is None else count
    rng = random.Random(config.seed)
    for i in range(total):
        yield generate_routine(rng, config, i)

def generate_corpus(config: CorpusConfig | None = None,
                    metrics=None) -> list[LoopNest]:
    """The full corpus, deterministic for a given seed.

    ``metrics`` (a :class:`repro.engine.metrics.Metrics`) times generation
    and counts routines, so corpus-scale experiments report where their
    wall time went.
    """
    config = config or CorpusConfig()
    if metrics is None:
        return list(iter_corpus(config))
    with metrics.timer("stage.corpus_generate"):
        nests = list(iter_corpus(config))
    metrics.count("corpus.routines", len(nests))
    return nests

#: Suite-flavoured archetype mixes, loosely modelled on the character of
#: the paper's four sources: SPEC92 floating-point codes are stencil/update
#: heavy; Perfect club codes mix in more reductions; the NAS kernels are
#: dominated by deep regular sweeps; "local" codes are small and varied.
SUITE_PROFILES: dict[str, tuple[float, ...]] = {
    "spec92": (0.40, 0.08, 0.10, 0.20, 0.06, 0.16),
    "perfect": (0.30, 0.22, 0.10, 0.12, 0.10, 0.16),
    "nas": (0.44, 0.14, 0.06, 0.12, 0.06, 0.18),
    "local": (0.22, 0.10, 0.22, 0.14, 0.10, 0.22),
}

def generate_suite_corpora(routines_per_suite: int = 300,
                           seed: int = 1997) -> dict[str, list[LoopNest]]:
    """Four sub-corpora mirroring the paper's benchmark sources."""
    corpora = {}
    for index, (suite, weights) in enumerate(sorted(SUITE_PROFILES.items())):
        config = CorpusConfig(routines=routines_per_suite,
                              seed=seed + 101 * index, weights=weights)
        corpora[suite] = generate_corpus(config)
    return corpora
