"""Synthetic routine corpus standing in for the paper's 1187 benchmark
routines (SPEC92, Perfect, NAS, local) in the Table 1 experiment.

We cannot ship the Fortran suites; the statistic under study -- the share
of input (read-read) dependences in a routine's dependence graph --
depends on the read/write mix and subscript structure of scientific loop
nests, which the seeded generator models.  See DESIGN.md for the
substitution argument.
"""

from repro.corpus.generator import (
    CorpusConfig,
    generate_corpus,
    generate_routine,
    iter_corpus,
)

__all__ = ["CorpusConfig", "generate_corpus", "generate_routine",
           "iter_corpus"]
