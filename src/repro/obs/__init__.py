"""repro.obs: the end-to-end observability layer.

Three stdlib-only pieces, threaded through the engine, the serving
layer, the CLI, and the benchmarks (docs/OBSERVABILITY.md is the guide):

* :mod:`repro.obs.trace` -- hierarchical spans with a context-propagated
  trace id, a bounded ring buffer, Chrome ``trace_event`` export, and
  structured JSON log lines (``REPRO_LOG=json``);
* :mod:`repro.obs.prom` -- Prometheus text-format exposition of the
  engine/serve metrics (``GET /metrics`` content-negotiates into it);
* :mod:`repro.obs.profile` -- opt-in cProfile hooks around engine stages
  and batcher flushes (``REPRO_PROFILE=1``).

Everything is off by default and costs one attribute check when off.
"""

from repro.obs.profile import (
    PROFILE_ENV,
    Profiler,
    get_profiler,
    set_profiler,
)
from repro.obs.prom import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    document_to_exposition,
    escape_label,
    federated_to_exposition,
    render_exposition,
    snapshot_to_exposition,
)
from repro.obs.trace import (
    LOG_ENV,
    TRACE_ENV,
    Span,
    Tracer,
    activate,
    configure,
    current_context,
    current_span_id,
    current_trace_id,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "LOG_ENV",
    "PROFILE_ENV",
    "PROMETHEUS_CONTENT_TYPE",
    "Profiler",
    "Span",
    "TRACE_ENV",
    "Tracer",
    "activate",
    "configure",
    "current_context",
    "current_span_id",
    "current_trace_id",
    "document_to_exposition",
    "escape_label",
    "federated_to_exposition",
    "get_profiler",
    "get_tracer",
    "render_exposition",
    "set_profiler",
    "set_tracer",
    "snapshot_to_exposition",
    "span",
]
