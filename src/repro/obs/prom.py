"""Prometheus text-format exposition of the engine/serve metrics.

Converts a :meth:`repro.engine.metrics.Metrics.snapshot` (and the serve
layer's gauges around it) into the Prometheus text exposition format
(version 0.0.4):

* every counter becomes a sample of the single ``repro_counter_total``
  counter family, keyed by a ``name`` label (label values are escaped
  per the exposition spec: backslash, double quote, newline);
* every stage's log-scale duration histogram becomes a
  ``repro_stage_duration_seconds`` histogram family sample set -- the
  cumulative ``_bucket`` series (monotone by construction, closed with
  ``le="+Inf"``), plus ``_sum``/``_count`` consistent with the JSON
  snapshot's ``total_s``/``count``;
* scalar gauges (uptime, queue depth, cache hit rates, ...) each get
  their own ``gauge`` family.

``GET /metrics`` on the serving layer content-negotiates into
:func:`render_exposition`; ``python -m repro metrics`` renders the same
text offline from a saved snapshot.
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "CONTENT_TYPE",
    "escape_label",
    "federated_to_exposition",
    "render_exposition",
    "sanitize_metric_name",
    "snapshot_to_exposition",
]

#: The content type Prometheus scrapers expect from a text endpoint.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

COUNTER_FAMILY = "repro_counter_total"
STAGE_FAMILY = "repro_stage_duration_seconds"

def escape_label(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"`` and
    newline."""
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))

def sanitize_metric_name(name: str) -> str:
    """A valid metric name: ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    cleaned = "".join(ch if (ch.isascii() and (ch.isalnum() or ch in "_:"))
                      else "_" for ch in name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return cleaned

def _format_value(value: float) -> str:
    """Float formatting that round-trips and keeps integers short."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)

def _bound_label(bound: float) -> str:
    return _format_value(bound)

def render_exposition(counters: Mapping[str, int],
                      stages: Mapping[str, Mapping],
                      bounds: list | tuple,
                      gauges: Mapping[str, float] | None = None) -> str:
    """The exposition text for one metrics snapshot.

    ``stages`` maps stage name to its ``StageStats.to_dict()`` form
    (``count``/``total_s``/``histogram``); ``bounds`` is the shared
    inclusive bucket upper-bound list; ``gauges`` are extra scalar
    families (already fully named, e.g. ``repro_uptime_seconds``).
    """
    lines: list[str] = []

    for name in sorted(gauges or {}):
        family = sanitize_metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format_value((gauges or {})[name])}")

    if counters:
        lines.append(f"# HELP {COUNTER_FAMILY} Monotone event counters "
                     f"of the analysis engine and serving layer.")
        lines.append(f"# TYPE {COUNTER_FAMILY} counter")
        for name in sorted(counters):
            lines.append(f'{COUNTER_FAMILY}{{name="{escape_label(name)}"}} '
                         f'{_format_value(counters[name])}')

    if stages:
        lines.append(f"# HELP {STAGE_FAMILY} Wall-time distribution of "
                     f"instrumented stages (log-scale buckets).")
        lines.append(f"# TYPE {STAGE_FAMILY} histogram")
        for stage in sorted(stages):
            data = stages[stage]
            label = escape_label(stage)
            histogram = list(data.get("histogram", []))
            # Pad/truncate defensively so the series always closes +Inf.
            while len(histogram) < len(bounds) + 1:
                histogram.append(0)
            cumulative = 0
            for bound, in_bucket in zip(bounds, histogram):
                cumulative += in_bucket
                lines.append(
                    f'{STAGE_FAMILY}_bucket{{stage="{label}",'
                    f'le="{_bound_label(bound)}"}} {cumulative}')
            cumulative += sum(histogram[len(bounds):])
            lines.append(f'{STAGE_FAMILY}_bucket{{stage="{label}",'
                         f'le="+Inf"}} {cumulative}')
            lines.append(f'{STAGE_FAMILY}_sum{{stage="{label}"}} '
                         f'{_format_value(data.get("total_s", 0.0))}')
            lines.append(f'{STAGE_FAMILY}_count{{stage="{label}"}} '
                         f'{data.get("count", 0)}')

    return "\n".join(lines) + "\n"

def snapshot_to_exposition(snapshot: Mapping,
                           gauges: Mapping[str, float] | None = None) -> str:
    """Render a bare :meth:`Metrics.snapshot` dict."""
    return render_exposition(snapshot.get("counters", {}),
                             snapshot.get("stages", {}),
                             snapshot.get("histogram_bounds_s", ()),
                             gauges=gauges)

def federated_to_exposition(document: Mapping) -> str:
    """Render a cluster router's federated ``GET /metrics`` document
    (recognized by its ``shards`` key; see docs/CLUSTER.md).

    Counter and stage-histogram series carry a ``shard`` label -- one
    sample set per worker plus ``shard="router"`` for the router's own
    counters -- so ``sum by (name)`` recovers the cluster totals while
    per-shard balance stays visible.  Cluster-level scalars (ready
    workers, ring generation, per-shard queue depths) become gauges.
    """
    cluster = document.get("cluster", {}) or {}
    shards = document.get("shards", {}) or {}
    lines: list[str] = []

    scalar_gauges = {
        "repro_uptime_seconds": document.get("uptime_s", 0.0),
        "repro_cluster_workers_target": cluster.get(
            "target", cluster.get("workers", len(shards))),
        "repro_cluster_workers_ready": cluster.get("ready", len(shards)),
        "repro_cluster_generation": cluster.get("generation", 0),
        "repro_cluster_pending": cluster.get("pending", 0),
    }
    for name in sorted(scalar_gauges):
        family = sanitize_metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format_value(scalar_gauges[name])}")

    shard_gauges = (
        ("repro_shard_up", lambda doc: 1),
        ("repro_shard_uptime_seconds",
         lambda doc: doc.get("uptime_s", 0.0)),
        ("repro_shard_queue_depth",
         lambda doc: doc.get("queue_depth", 0)),
        ("repro_shard_in_flight", lambda doc: doc.get("in_flight", 0)),
    )
    for family, value_of in shard_gauges:
        if not shards:
            break
        lines.append(f"# TYPE {family} gauge")
        for shard in sorted(shards):
            lines.append(f'{family}{{shard="{escape_label(shard)}"}} '
                         f'{_format_value(value_of(shards[shard]))}')

    # One snapshot per source, each tagged with its shard label.
    sources: list[tuple[str, Mapping]] = [
        (shard, shards[shard].get("metrics", {}) or {})
        for shard in sorted(shards)]
    router_metrics = (document.get("router", {}) or {}).get("metrics")
    if router_metrics:
        sources.append(("router", router_metrics))

    if any(snapshot.get("counters") for _, snapshot in sources):
        lines.append(f"# HELP {COUNTER_FAMILY} Monotone event counters "
                     f"of the analysis engine and serving layer.")
        lines.append(f"# TYPE {COUNTER_FAMILY} counter")
        for shard, snapshot in sources:
            counters = snapshot.get("counters", {}) or {}
            for name in sorted(counters):
                lines.append(
                    f'{COUNTER_FAMILY}{{name="{escape_label(name)}",'
                    f'shard="{escape_label(shard)}"}} '
                    f'{_format_value(counters[name])}')

    if any(snapshot.get("stages") for _, snapshot in sources):
        lines.append(f"# HELP {STAGE_FAMILY} Wall-time distribution of "
                     f"instrumented stages (log-scale buckets).")
        lines.append(f"# TYPE {STAGE_FAMILY} histogram")
        for shard, snapshot in sources:
            stages = snapshot.get("stages", {}) or {}
            bounds = list(snapshot.get("histogram_bounds_s", ()))
            shard_label = escape_label(shard)
            for stage in sorted(stages):
                data = stages[stage]
                label = escape_label(stage)
                histogram = list(data.get("histogram", []))
                while len(histogram) < len(bounds) + 1:
                    histogram.append(0)
                cumulative = 0
                for bound, in_bucket in zip(bounds, histogram):
                    cumulative += in_bucket
                    lines.append(
                        f'{STAGE_FAMILY}_bucket{{stage="{label}",'
                        f'shard="{shard_label}",'
                        f'le="{_bound_label(bound)}"}} {cumulative}')
                cumulative += sum(histogram[len(bounds):])
                lines.append(f'{STAGE_FAMILY}_bucket{{stage="{label}",'
                             f'shard="{shard_label}",le="+Inf"}} '
                             f'{cumulative}')
                lines.append(f'{STAGE_FAMILY}_sum{{stage="{label}",'
                             f'shard="{shard_label}"}} '
                             f'{_format_value(data.get("total_s", 0.0))}')
                lines.append(f'{STAGE_FAMILY}_count{{stage="{label}",'
                             f'shard="{shard_label}"}} '
                             f'{data.get("count", 0)}')

    return "\n".join(lines) + "\n"

def document_to_exposition(document: Mapping) -> str:
    """Render a metrics JSON document of any of the three shapes: a
    cluster router's federated document (recognized by its ``shards``
    key), a serve ``GET /metrics`` document (recognized by its
    ``metrics`` key), or a bare snapshot.

    The serve document's scalar fields become gauges, and its cache hit
    rates are exposed as ``repro_cache_hit_rate``-style gauges so a
    scraper sees the full service picture from one endpoint.
    """
    if "shards" in document:
        return federated_to_exposition(document)
    if "metrics" not in document:
        return snapshot_to_exposition(document)
    snapshot = document.get("metrics", {})
    gauges: dict[str, float] = {}
    for field, family in (("uptime_s", "repro_uptime_seconds"),
                          ("queue_depth", "repro_queue_depth"),
                          ("in_flight", "repro_in_flight")):
        if field in document:
            gauges[family] = float(document[field])
    for family, rate in (document.get("cache", {})
                         .get("hit_rates", {}) or {}).items():
        gauges[f"repro_cache_hit_rate_{sanitize_metric_name(family)}"] = \
            float(rate)
    return snapshot_to_exposition(snapshot, gauges=gauges)
