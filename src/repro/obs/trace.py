"""Hierarchical trace spans with cross-process propagation.

The span model is deliberately tiny -- close to OpenTelemetry's, minus
everything that needs a wire protocol:

* a **trace** is identified by a random 64-bit hex id and groups every
  span recorded on behalf of one logical operation (an ``optimize`` call,
  one HTTP request, one batch);
* a **span** is one timed region (``span("engine.analyze")``) with a
  process-unique id, an optional parent id, and free-form attributes;
* the *current* ``(trace_id, span_id)`` pair lives in a
  :mod:`contextvars` variable, so nesting works across ``await`` points
  and, via :func:`activate`, across executor threads and worker
  processes (child spans are serialized back with worker results and
  re-ingested by the parent).

Finished spans land in a bounded ring buffer on the :class:`Tracer`
(oldest dropped first) and can be exported as Chrome ``trace_event``
JSON (load in ``chrome://tracing`` or https://ui.perfetto.dev) or, with
``REPRO_LOG=json``, emitted as one structured JSON log line per span.

The disabled path is a near-no-op: :func:`span` checks one attribute and
yields ``None`` without allocating a span, so leaving tracing off costs
well under the 2% budget on the engine benchmarks (docs/OBSERVABILITY.md
records the measurement).
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import IO, Iterable, Iterator, Mapping

__all__ = [
    "LOG_ENV",
    "Span",
    "TRACE_BUFFER_ENV",
    "TRACE_ENV",
    "Tracer",
    "activate",
    "configure",
    "current_context",
    "current_span_id",
    "current_trace_id",
    "get_tracer",
    "set_tracer",
    "span",
]

#: Set to ``1``/``true``/``on`` to enable the global tracer at import.
TRACE_ENV = "REPRO_TRACE"
#: Set to ``json`` to emit one structured log line per finished span.
LOG_ENV = "REPRO_LOG"
#: Override the ring-buffer capacity (finished spans kept in memory).
TRACE_BUFFER_ENV = "REPRO_TRACE_BUFFER"

DEFAULT_BUFFER = 4096

#: The active ``(trace_id, span_id)`` pair, or ``None`` outside any span.
_context: contextvars.ContextVar[tuple[str, str] | None] = \
    contextvars.ContextVar("repro_trace_context", default=None)

def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "on",
                                                        "yes")

class Span:
    """One finished (or in-flight) timed region."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "start_us", "duration_us", "pid", "tid", "_t0_ns")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: str | None, attrs: dict | None = None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs or {}
        self.start_us = time.time_ns() // 1000  # wall epoch, microseconds
        self.duration_us = 0
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self._t0_ns = time.perf_counter_ns()

    def finish(self) -> None:
        self.duration_us = max(0, (time.perf_counter_ns() - self._t0_ns)
                               // 1000)

    def set(self, **attrs) -> None:
        """Attach attributes to an open span (JSON-serializable values)."""
        self.attrs.update(attrs)

    # -- serialization (worker -> parent, exports) ---------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Span":
        restored = cls(data["name"], data["trace_id"], data["span_id"],
                       data.get("parent_id"), dict(data.get("attrs", {})))
        restored.start_us = data.get("start_us", 0)
        restored.duration_us = data.get("duration_us", 0)
        restored.pid = data.get("pid", restored.pid)
        restored.tid = data.get("tid", restored.tid)
        return restored

    def to_chrome(self) -> dict:
        """A Chrome ``trace_event`` complete ("X") event."""
        args = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id:
            args["parent_id"] = self.parent_id
        args.update(self.attrs)
        return {
            "name": self.name,
            "cat": "repro",
            "ph": "X",
            "ts": self.start_us,
            "dur": self.duration_us,
            "pid": self.pid,
            "tid": self.tid,
            "args": args,
        }

class Tracer:
    """Span factory plus the bounded ring buffer of finished spans.

    ``enabled`` is a plain attribute so the hot no-op check in
    :func:`span` stays one attribute load.  Recording is lock-protected:
    the serving layer finishes spans from executor threads concurrently
    with the asyncio dispatcher.
    """

    def __init__(self, enabled: bool | None = None,
                 buffer_size: int | None = None,
                 log_format: str | None = None,
                 log_stream: IO[str] | None = None):
        if enabled is None:
            enabled = _env_flag(TRACE_ENV)
        if buffer_size is None:
            try:
                buffer_size = int(os.environ.get(TRACE_BUFFER_ENV,
                                                 DEFAULT_BUFFER))
            except ValueError:
                buffer_size = DEFAULT_BUFFER
        if log_format is None:
            log_format = os.environ.get(LOG_ENV, "").strip().lower()
        self.enabled = bool(enabled)
        self.log_format = log_format
        self.log_stream = log_stream
        self._spans: deque[Span] = deque(maxlen=max(1, buffer_size))
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    # -- ids -----------------------------------------------------------------

    def new_trace_id(self) -> str:
        return os.urandom(8).hex()

    def next_span_id(self) -> str:
        """Unique within the process *and* across worker processes (the
        pid prefix keeps shipped-back worker spans collision-free)."""
        return f"{os.getpid():x}-{next(self._ids):x}"

    # -- recording -----------------------------------------------------------

    def record(self, span_obj: Span) -> None:
        with self._lock:
            self._spans.append(span_obj)
        if self.log_format == "json":
            self._emit_log(span_obj)

    def ingest(self, serialized: Iterable[Mapping]) -> int:
        """Re-record spans shipped back from a worker process (already
        carrying this trace's ids); returns how many were added."""
        added = 0
        for data in serialized or ():
            self.record(Span.from_dict(data))
            added += 1
        return added

    def _emit_log(self, span_obj: Span) -> None:
        stream = self.log_stream if self.log_stream is not None \
            else sys.stderr
        line = json.dumps({
            "event": "span",
            "ts": span_obj.start_us / 1e6,
            "name": span_obj.name,
            "trace_id": span_obj.trace_id,
            "span_id": span_obj.span_id,
            "parent_id": span_obj.parent_id,
            "duration_ms": span_obj.duration_us / 1000.0,
            "pid": span_obj.pid,
            "attrs": span_obj.attrs,
        }, sort_keys=True)
        try:
            stream.write(line + "\n")
        except (OSError, ValueError):
            pass  # a closed log stream never takes the operation down

    # -- reading -------------------------------------------------------------

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- exports -------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The ring buffer as a Chrome ``trace_event`` document."""
        return {
            "displayTimeUnit": "ms",
            "traceEvents": [span_obj.to_chrome()
                            for span_obj in self.spans()],
        }

    def write_chrome(self, path) -> None:
        import pathlib

        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.chrome_trace(), indent=2,
                                     sort_keys=True) + "\n")

# -- the global tracer and the span API ---------------------------------------

_TRACER = Tracer()

def get_tracer() -> Tracer:
    return _TRACER

def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer; returns the previous one (tests and worker
    processes restore it)."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous

def configure(enabled: bool | None = None,
              buffer_size: int | None = None,
              log_format: str | None = None,
              log_stream: IO[str] | None = None) -> Tracer:
    """Reconfigure the global tracer in place (``None`` keeps a field)."""
    tracer = _TRACER
    if enabled is not None:
        tracer.enabled = bool(enabled)
    if buffer_size is not None:
        with tracer._lock:
            tracer._spans = deque(tracer._spans, maxlen=max(1, buffer_size))
    if log_format is not None:
        tracer.log_format = log_format
    if log_stream is not None:
        tracer.log_stream = log_stream
    return tracer

def current_context() -> tuple[str, str] | None:
    """The active ``(trace_id, span_id)``, or ``None``."""
    return _context.get()

def current_trace_id() -> str | None:
    ctx = _context.get()
    return ctx[0] if ctx else None

def current_span_id() -> str | None:
    ctx = _context.get()
    return ctx[1] if ctx else None

@contextmanager
def span(name: str, tracer: Tracer | None = None, **attrs) -> Iterator[
        Span | None]:
    """Open a child span of the current context (or a new trace root).

    Yields the open :class:`Span` (``span.set(key=value)`` attaches
    attributes) -- or ``None`` when tracing is disabled, in which case
    the only cost is this check.
    """
    active = tracer if tracer is not None else _TRACER
    if not active.enabled:
        yield None
        return
    ctx = _context.get()
    if ctx is None:
        trace_id, parent_id = active.new_trace_id(), None
    else:
        trace_id, parent_id = ctx
    span_obj = Span(name, trace_id, active.next_span_id(), parent_id, attrs)
    token = _context.set((trace_id, span_obj.span_id))
    try:
        yield span_obj
    finally:
        _context.reset(token)
        span_obj.finish()
        active.record(span_obj)

@contextmanager
def activate(context: tuple[str, str] | None) -> Iterator[None]:
    """Adopt a remote ``(trace_id, span_id)`` parent context -- the
    propagation primitive for executor threads and pool workers.  A
    ``None`` context is a no-op, so call sites need no branching."""
    if context is None:
        yield
        return
    token = _context.set((context[0], context[1]))
    try:
        yield
    finally:
        _context.reset(token)
