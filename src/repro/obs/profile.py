"""Opt-in profiling hooks for engine stages and batcher flushes.

Disabled by default; enable with ``REPRO_PROFILE=1`` (or the ``--profile``
flags on the CLI and the benchmarks).  When enabled,
:meth:`Profiler.profile` wraps a stage in :mod:`cProfile` plus a
``perf_counter_ns`` timer and aggregates, per stage name:

* call count and total wall time;
* the top-N functions by cumulative time (merged across calls).

cProfile cannot nest, so when a profiled stage runs inside another
profiled stage only the outermost gets function-level attribution; inner
stages still get exact wall-time accounting.  :meth:`Profiler.write`
dumps the summary as JSON next to the results artifact (the
``*.profile.json`` convention the benchmarks use).
"""

from __future__ import annotations

import cProfile
import json
import os
import pathlib
import pstats
import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PROFILE_ENV", "Profiler", "get_profiler", "set_profiler"]

#: Set to ``1``/``true``/``on`` to enable the global profiler at import.
PROFILE_ENV = "REPRO_PROFILE"

class _StageProfile:
    """Aggregated observations for one profiled stage."""

    __slots__ = ("calls", "total_ns", "functions")

    def __init__(self) -> None:
        self.calls = 0
        self.total_ns = 0
        # (file, line, func) -> [ncalls, cumtime_s]
        self.functions: dict[tuple, list] = {}

    def add(self, elapsed_ns: int, profile: cProfile.Profile | None) -> None:
        self.calls += 1
        self.total_ns += elapsed_ns
        if profile is None:
            return
        stats = pstats.Stats(profile)
        for key, (_cc, ncalls, _tt, cumtime, _callers) in \
                stats.stats.items():  # type: ignore[attr-defined]
            entry = self.functions.get(key)
            if entry is None:
                entry = self.functions[key] = [0, 0.0]
            entry[0] += ncalls
            entry[1] += cumtime

    def top(self, n: int) -> list[dict]:
        ranked = sorted(self.functions.items(), key=lambda kv: -kv[1][1])
        return [{
            "function": f"{file}:{line}({name})",
            "ncalls": ncalls,
            "cumtime_s": cumtime,
        } for (file, line, name), (ncalls, cumtime) in ranked[:n]]

class Profiler:
    """Per-stage cProfile aggregation behind a cheap enabled check."""

    def __init__(self, enabled: bool | None = None, top_n: int = 10):
        if enabled is None:
            enabled = os.environ.get(PROFILE_ENV, "").strip().lower() in (
                "1", "true", "on", "yes")
        self.enabled = bool(enabled)
        self.top_n = top_n
        self._stages: dict[str, _StageProfile] = {}
        self._lock = threading.Lock()
        self._active = threading.local()

    @contextmanager
    def profile(self, stage: str) -> Iterator[None]:
        """Profile a block under ``stage``; a no-op when disabled."""
        if not self.enabled:
            yield
            return
        nested = getattr(self._active, "depth", 0) > 0
        profile = None if nested else cProfile.Profile()
        self._active.depth = getattr(self._active, "depth", 0) + 1
        t0 = time.perf_counter_ns()
        try:
            if profile is not None:
                profile.enable()
            try:
                yield
            finally:
                if profile is not None:
                    profile.disable()
        finally:
            elapsed = time.perf_counter_ns() - t0
            self._active.depth -= 1
            with self._lock:
                entry = self._stages.get(stage)
                if entry is None:
                    entry = self._stages[stage] = _StageProfile()
                entry.add(elapsed, profile)

    # -- reading -------------------------------------------------------------

    def summary(self, top_n: int | None = None) -> dict:
        """JSON-ready per-stage totals plus top-N hot functions."""
        limit = top_n if top_n is not None else self.top_n
        with self._lock:
            return {
                "enabled": self.enabled,
                "stages": {
                    name: {
                        "calls": entry.calls,
                        "total_s": entry.total_ns / 1e9,
                        "top": entry.top(limit),
                    } for name, entry in sorted(self._stages.items())},
            }

    def clear(self) -> None:
        with self._lock:
            self._stages.clear()

    def write(self, path) -> pathlib.Path:
        """Dump the summary next to a results artifact; returns the path."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.summary(), indent=2,
                                     sort_keys=True) + "\n")
        return target

_PROFILER = Profiler()

def get_profiler() -> Profiler:
    return _PROFILER

def set_profiler(profiler: Profiler) -> Profiler:
    """Swap the global profiler; returns the previous one."""
    global _PROFILER
    previous = _PROFILER
    _PROFILER = profiler
    return previous
