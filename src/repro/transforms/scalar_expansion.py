"""Scalar expansion: turn loop-body temporaries into arrays.

A scalar temporary threads a value between statements and thereby welds
them into one pi-block (see :mod:`repro.transforms.distribution`).
Expanding the scalar into an array indexed by the iteration vector removes
that constraint, at the cost of memory -- the classic enabling transform
for distribution and vectorization.

Only *privatizable* temporaries are expanded: within each iteration the
temporary must be written before it is read (no loop-carried scalar
values).  Carried scalars raise :class:`ExpansionError`.
"""

from __future__ import annotations

from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    Call,
    Expr,
    LoopNest,
    ScalarVar,
    Statement,
    Subscript,
)

class ExpansionError(ValueError):
    """A temporary cannot be expanded (its value crosses iterations)."""

def expansion_array_name(scalar: str) -> str:
    return f"{scalar}__exp"

def _check_privatizable(nest: LoopNest, temps: set[str]) -> None:
    written: set[str] = set()
    for stmt in nest.body:
        for node in _walk(stmt.rhs):
            if isinstance(node, ScalarVar) and node.name in temps \
                    and node.name not in written:
                raise ExpansionError(
                    f"temporary {node.name!r} is read before it is written "
                    "in the loop body (loop-carried value); cannot expand")
        if isinstance(stmt.lhs, ScalarVar) and stmt.lhs.name in temps:
            written.add(stmt.lhs.name)

def _walk(expr: Expr):
    yield expr
    if isinstance(expr, BinOp):
        yield from _walk(expr.left)
        yield from _walk(expr.right)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from _walk(arg)

def _index_subscripts(nest: LoopNest) -> tuple[Subscript, ...]:
    return tuple(Subscript.of({name: 1}) for name in nest.index_names)

def _rewrite(expr: Expr, temps: set[str],
             subscripts: tuple[Subscript, ...]) -> Expr:
    if isinstance(expr, ScalarVar) and expr.name in temps:
        return ArrayRef(expansion_array_name(expr.name), subscripts)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _rewrite(expr.left, temps, subscripts),
                     _rewrite(expr.right, temps, subscripts))
    if isinstance(expr, Call):
        return Call(expr.func,
                    tuple(_rewrite(a, temps, subscripts) for a in expr.args))
    return expr

def expand_scalars(nest: LoopNest,
                   only: set[str] | None = None) -> LoopNest:
    """Expand the nest's (privatizable) temporaries into arrays.

    ``only`` restricts the expansion to a subset of temporaries.  The
    expansion arrays are named ``<temp>__exp`` and are indexed by the full
    iteration vector; callers executing the result must allocate them
    (trip-count extents per dimension).
    """
    temps = set(nest.scalar_temporaries())
    if only is not None:
        temps &= only
    if not temps:
        return nest
    _check_privatizable(nest, temps)
    subscripts = _index_subscripts(nest)
    body = []
    for stmt in nest.body:
        rhs = _rewrite(stmt.rhs, temps, subscripts)
        if isinstance(stmt.lhs, ScalarVar) and stmt.lhs.name in temps:
            lhs: ArrayRef | ScalarVar = ArrayRef(
                expansion_array_name(stmt.lhs.name), subscripts)
        else:
            lhs = stmt.lhs if isinstance(stmt.lhs, ScalarVar) \
                else ArrayRef(stmt.lhs.array, stmt.lhs.subscripts)
        body.append(Statement(lhs, rhs))
    return LoopNest(
        name=f"{nest.name}_exp",
        loops=nest.loops,
        body=tuple(body),
        description=(nest.description + " " if nest.description else "")
        + f"[scalars expanded: {', '.join(sorted(temps))}]",
    )

def expansion_shapes(nest: LoopNest, bindings: dict[str, int],
                     margin: int = 1) -> dict[str, tuple[int, ...]]:
    """Extents for the expansion arrays under concrete loop bounds."""
    shapes = {}
    extents = []
    for loop in nest.loops:
        hi = loop.upper.evaluate(bindings)
        extents.append(hi + margin + 1)
    for temp in nest.scalar_temporaries():
        shapes[expansion_array_name(temp)] = tuple(extents)
    return shapes
