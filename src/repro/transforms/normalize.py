"""Loop normalization: shift every loop to a zero lower bound.

Front ends hand dependence analyzers normalized loops; the pass rewrites
``DO I = lo, hi`` into ``DO I = 0, hi - lo`` and substitutes ``I + lo``
into every subscript and bound use.  Bounds in this IR are affine in
symbolic parameters, so the substitution stays closed under the Subscript
representation.
"""

from __future__ import annotations

from repro.ir.nodes import (
    ArrayRef,
    BinOp,
    Bound,
    Call,
    Expr,
    Loop,
    LoopNest,
    ScalarVar,
    Statement,
    Subscript,
)

def _shift_subscript(sub: Subscript, shifts: dict[str, Bound]) -> Subscript:
    """Substitute ``index -> index + lo`` for every normalized loop."""
    const = sub.const
    params = dict(sub.param_coeffs)
    for name, coef in sub.loop_coeffs:
        shift = shifts.get(name)
        if shift is None:
            continue
        const += coef * shift.const
        for pname, pcoef in shift.param_coeffs:
            params[pname] = params.get(pname, 0) + coef * pcoef
    return Subscript(sub.loop_coeffs,
                     tuple(sorted((k, v) for k, v in params.items() if v)),
                     const)

def _shift_expr(expr: Expr, shifts: dict[str, Bound]) -> Expr:
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.array,
                        tuple(_shift_subscript(s, shifts)
                              for s in expr.subscripts))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _shift_expr(expr.left, shifts),
                     _shift_expr(expr.right, shifts))
    if isinstance(expr, Call):
        return Call(expr.func,
                    tuple(_shift_expr(a, shifts) for a in expr.args))
    return expr

def normalize_nest(nest: LoopNest) -> LoopNest:
    """Return an equivalent nest whose loops all start at 0 with step 1.

    Loops already normalized are left untouched; non-unit steps are
    rejected (source nests in this project always have step 1 -- steps
    appear only after unroll-and-jam, which is applied *after* analysis).
    """
    shifts: dict[str, Bound] = {}
    loops = []
    for loop in nest.loops:
        if loop.step != 1:
            raise ValueError(
                f"cannot normalize loop {loop.index} with step {loop.step}")
        if loop.lower.const == 0 and not loop.lower.param_coeffs:
            loops.append(loop)
            continue
        shifts[loop.index] = loop.lower
        new_upper_params = dict(loop.upper.param_coeffs)
        for name, coef in loop.lower.param_coeffs:
            new_upper_params[name] = new_upper_params.get(name, 0) - coef
        loops.append(Loop(
            loop.index,
            Bound(0),
            Bound(loop.upper.const - loop.lower.const,
                  tuple(sorted((k, v) for k, v in new_upper_params.items()
                               if v))),
            1))
    if not shifts:
        return nest
    body = []
    for stmt in nest.body:
        rhs = _shift_expr(stmt.rhs, shifts)
        if isinstance(stmt.lhs, ScalarVar):
            lhs: ArrayRef | ScalarVar = stmt.lhs
        else:
            lhs = ArrayRef(stmt.lhs.array,
                           tuple(_shift_subscript(s, shifts)
                                 for s in stmt.lhs.subscripts))
        body.append(Statement(lhs, rhs))
    return LoopNest(
        name=f"{nest.name}_norm",
        loops=tuple(loops),
        body=tuple(body),
        description=(nest.description + " " if nest.description else "")
        + "[normalized]",
    )
