"""Loop distribution (fission) and loop fusion.

Distribution splits a multi-statement nest into a sequence of smaller
nests, one per strongly-connected component of the statement dependence
graph (the classic pi-block construction), in a topological order of the
inter-block dependences.  Fusion is the inverse: two adjacent nests with
identical loop structure merge when no *fusion-preventing* dependence
(one that fusion would reverse) exists between their bodies.

Both passes matter to this project because unroll-and-jam operates on
perfect nests: distribution carves multi-statement bodies into pieces the
balance model can treat independently, and fusion re-combines loops whose
bodies share reuse.
"""

from __future__ import annotations

import networkx as nx

from repro.dependence.export import statement_graph
from repro.dependence.graph import build_dependence_graph
from repro.dependence.siv import STAR
from repro.ir.nodes import Loop, LoopNest

class DistributionError(ValueError):
    """The requested distribution/fusion is malformed or illegal."""

def distribute(nest: LoopNest) -> list[LoopNest]:
    """Split ``nest`` into per-pi-block nests in dependence order.

    Statements in one strongly-connected component (a recurrence) stay
    together; components are emitted in a topological order that respects
    every inter-component dependence, preferring original textual order
    among independent components.
    """
    graph = build_dependence_graph(nest, include_input=False)
    stmt_graph = statement_graph(graph, include_input=False)
    # Scalar temporaries are invisible to the array dependence graph but
    # thread values between statements: keep every statement touching the
    # same temporary in one block (conservative; scalar expansion could
    # relax this).
    temps = set(nest.scalar_temporaries())
    users: dict[str, list[int]] = {}
    from repro.ir.nodes import ScalarVar, walk_expr

    for index, stmt in enumerate(nest.body):
        touched = {node.name for node in walk_expr(stmt.rhs)
                   if isinstance(node, ScalarVar) and node.name in temps}
        if isinstance(stmt.lhs, ScalarVar) and stmt.lhs.name in temps:
            touched.add(stmt.lhs.name)
        for name in touched:
            users.setdefault(name, []).append(index)
    for indices in users.values():
        for a, b in zip(indices, indices[1:]):
            stmt_graph.add_edge(a, b)
            stmt_graph.add_edge(b, a)
    condensation = nx.condensation(stmt_graph)
    # Deterministic topological order: lexicographic by the smallest
    # original statement index in each block.
    order = list(nx.lexicographical_topological_sort(
        condensation,
        key=lambda n: min(condensation.nodes[n]["members"])))
    pieces = []
    for serial, block in enumerate(order):
        members = sorted(condensation.nodes[block]["members"])
        body = tuple(nest.body[i] for i in members)
        pieces.append(LoopNest(
            name=f"{nest.name}_d{serial}",
            loops=nest.loops,
            body=body,
            description=(nest.description + " " if nest.description else "")
            + f"[distributed block {members}]",
        ))
    return pieces

def _loops_compatible(a: tuple[Loop, ...], b: tuple[Loop, ...]) -> bool:
    return a == b

def fusion_preventing(first: LoopNest, second: LoopNest) -> bool:
    """Would fusing ``second`` into ``first`` reverse a dependence?

    The classic test: build the fused body and look at dependences from a
    ``second`` statement to a ``first`` statement that are carried with a
    *positive* distance -- in the fused loop the ``first`` statement would
    consume a value before the ``second`` produced it (or vice versa for
    backward deps at negative distance from first to second).
    """
    fused = fuse_unchecked(first, second)
    boundary = len(first.body)
    graph = build_dependence_graph(fused, include_input=False)
    for dep in graph:
        if dep.src.stmt_index >= boundary and dep.dst.stmt_index < boundary:
            # In the original sequence every access of ``first`` precedes
            # every access of ``second``; a fused-loop dependence flowing
            # second -> first is carried backward relative to that order,
            # i.e. fusion would reverse it.  (Loop-independent edges in
            # this direction cannot arise: textual order inside the fused
            # body already puts ``first`` before ``second``.)
            return True
    return False

def fuse_unchecked(first: LoopNest, second: LoopNest) -> LoopNest:
    if not _loops_compatible(first.loops, second.loops):
        raise DistributionError(
            f"cannot fuse {first.name} and {second.name}: loop structures "
            "differ")
    return LoopNest(
        name=f"{first.name}+{second.name}",
        loops=first.loops,
        body=first.body + second.body,
        description="[fused]",
    )

def fuse(first: LoopNest, second: LoopNest) -> LoopNest:
    """Fuse two adjacent same-structure nests; raises on illegality."""
    if fusion_preventing(first, second):
        raise DistributionError(
            f"fusing {first.name} and {second.name} would reverse a "
            "dependence")
    return fuse_unchecked(first, second)

def maximal_fusion(nests: list[LoopNest]) -> list[LoopNest]:
    """Greedy pairwise fusion of an adjacent sequence (typed fusion not
    needed: bodies keep their order)."""
    if not nests:
        return []
    result = [nests[0]]
    for nest in nests[1:]:
        last = result[-1]
        if _loops_compatible(last.loops, nest.loops) \
                and not fusion_preventing(last, nest):
            result[-1] = fuse_unchecked(last, nest)
        else:
            result.append(nest)
    return result
