"""Supporting loop transformations.

Unroll-and-jam rarely runs alone: the frameworks the paper builds on
(Wolf-Lam) and compares against (Wolf, Maydan & Chen) combine it with loop
*permutation*, and real front ends normalize loops first.  This package
supplies those passes over the same IR:

* :mod:`repro.transforms.interchange` -- legality-checked loop permutation
  plus a locality-driven loop-order search (memory-order a la Wolf-Lam /
  McKinley-Carr-Tseng), and the combined permute-then-unroll optimization
  of the Wolf-Maydan-Chen comparison.
* :mod:`repro.transforms.normalize` -- shift loops to zero lower bounds.
"""

from repro.transforms.interchange import (
    InterchangeError,
    best_loop_order,
    legal_permutations,
    permute,
    permutation_is_legal,
)
from repro.transforms.normalize import normalize_nest

__all__ = [
    "InterchangeError",
    "best_loop_order",
    "legal_permutations",
    "normalize_nest",
    "permutation_is_legal",
    "permute",
]
