"""Loop interchange / permutation with dependence-based legality.

A permutation of a perfect nest is legal iff every dependence distance
vector remains lexicographically positive after permuting its entries
(unknown ``*`` entries are treated as possibly negative, conservatively).
The locality search scores every legal order with the Wolf-Lam Equation-1
cost of the would-be-innermost localized space and picks the cheapest --
"memory order" in the McKinley-Carr-Tseng sense.

Only rectangular nests are handled: our IR's bounds depend on symbolic
parameters but never on other loop indices, so permutation needs no bound
rewriting.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import permutations as iter_permutations
from typing import Sequence

from repro.dependence.graph import DependenceGraph, build_dependence_graph
from repro.dependence.siv import STAR
from repro.ir.nodes import LoopNest
from repro.reuse.locality import nest_memory_cost

class InterchangeError(ValueError):
    """An illegal or malformed permutation request."""

def _lex_sign(values: Sequence[int]) -> int:
    for value in values:
        if value > 0:
            return 1
        if value < 0:
            return -1
    return 0

def _violates(distance: Sequence, order: Sequence[int]) -> bool:
    """Does some *realized* distance of this oriented dependence become
    lexicographically negative under the permutation?

    The realized distances of an oriented edge are exactly the
    lexicographically non-negative instantiations of its vector (an edge
    points forward in time by construction).  Lexicographic comparisons
    depend only on entry signs, so instantiating every ``*`` over
    {-1, 0, 1} is an exact check of the sign abstraction.
    """
    star_positions = [i for i, d in enumerate(distance) if d == STAR]
    if not star_positions:
        concrete = list(distance)
        return _lex_sign(concrete) >= 0 and \
            _lex_sign([concrete[level] for level in order]) < 0

    from itertools import product

    for signs in product((-1, 0, 1), repeat=len(star_positions)):
        concrete = list(distance)
        for pos, sign in zip(star_positions, signs):
            concrete[pos] = sign
        if _lex_sign(concrete) < 0:
            continue  # not a realized instance of this oriented edge
        if _lex_sign([concrete[level] for level in order]) < 0:
            return True
    return False

def permutation_is_legal(nest: LoopNest, order: Sequence[int],
                         graph: DependenceGraph | None = None) -> bool:
    """Is the permutation (new outer-to-inner order of old levels) legal?"""
    if sorted(order) != list(range(nest.depth)):
        raise InterchangeError(f"{order!r} is not a permutation of "
                               f"0..{nest.depth - 1}")
    if graph is None:
        graph = build_dependence_graph(nest, include_input=False)
    for dep in graph:
        if dep.is_input:
            continue
        if _violates(dep.distance, order):
            return False
    return True

def permute(nest: LoopNest, order: Sequence[int],
            graph: DependenceGraph | None = None,
            check: bool = True) -> LoopNest:
    """Apply a loop permutation; raises :class:`InterchangeError` when the
    permutation cannot be proven legal (pass ``check=False`` to force)."""
    if check and not permutation_is_legal(nest, order, graph):
        raise InterchangeError(
            f"permutation {tuple(order)} violates a dependence of "
            f"{nest.name}")
    loops = tuple(nest.loops[level] for level in order)
    suffix = "".join(loops[k].index for k in range(len(loops)))
    return LoopNest(
        name=f"{nest.name}_perm{suffix.lower()}",
        loops=loops,
        body=nest.body,
        description=(nest.description + " " if nest.description else "")
        + f"[permuted {tuple(order)}]",
    )

def legal_permutations(nest: LoopNest) -> list[tuple[int, ...]]:
    """All legal loop orders of the nest (identity always included)."""
    graph = build_dependence_graph(nest, include_input=False)
    orders = []
    for order in iter_permutations(range(nest.depth)):
        if order == tuple(range(nest.depth)):
            orders.append(order)
        elif permutation_is_legal(nest, order, graph):
            orders.append(order)
    return orders

def best_loop_order(nest: LoopNest, line_size: int = 4,
                    trip: int = 100) -> tuple[tuple[int, ...], Fraction]:
    """The legal loop order with the lowest Equation-1 memory cost.

    Returns (order, cost).  Ties break toward the original order, then
    lexicographically -- a stable, predictable choice.
    """
    best: tuple[Fraction, int, tuple[int, ...]] | None = None
    identity = tuple(range(nest.depth))
    for order in legal_permutations(nest):
        candidate = permute(nest, order, check=False)
        cost, _ = nest_memory_cost(candidate, line_size=line_size, trip=trip)
        key = (cost, 0 if order == identity else 1, order)
        if best is None or key < best:
            best = key
    assert best is not None  # identity is always legal
    return best[2], best[0]

def memory_order(nest: LoopNest, line_size: int = 4,
                 trip: int = 100) -> LoopNest:
    """Permute the nest into its best (legal) memory order."""
    order, _ = best_loop_order(nest, line_size=line_size, trip=trip)
    if order == tuple(range(nest.depth)):
        return nest
    return permute(nest, order, check=False)
