"""Table 1: input-dependence share of the corpus dependence graphs.

Regenerates the nine-band histogram and the section 5.1 aggregates (the
paper: 84% of all dependences are input, 55.7% per-routine mean), and
benchmarks the per-routine analysis cost with and without input
dependences -- the processing-time saving the paper argues for.
"""

import pytest

from conftest import write_artifact
from repro.corpus import CorpusConfig, generate_corpus
from repro.dependence import build_dependence_graph
from repro.experiments.table1 import run_table1

FULL = CorpusConfig(routines=1187)
BENCH = CorpusConfig(routines=150)

@pytest.fixture(scope="module")
def report():
    return run_table1(FULL)

def test_regenerate_table1(report, results_dir):
    write_artifact(results_dir, "table1.txt", report.format())
    assert sum(report.band_counts) == report.routines_with_deps

def test_input_dependences_dominate(report):
    """Paper: 84% of the 305,885 dependences were input."""
    assert report.total_input_share > 0.6

def test_most_routines_above_one_third(report):
    """Paper: in 74% of the routines at least one-third of the dependences
    were input."""
    above = sum(report.band_counts[2:])
    assert above / report.routines_with_deps > 0.6

def test_space_saving_matches_share(report):
    assert report.space_saved_fraction == pytest.approx(
        report.total_input_share, abs=0.02)

def bench_full_graphs():
    corpus = generate_corpus(BENCH)
    return sum(build_dependence_graph(nest, include_input=True).total_count
               for nest in corpus)

def bench_lean_graphs():
    corpus = generate_corpus(BENCH)
    return sum(build_dependence_graph(nest, include_input=False).total_count
               for nest in corpus)

def test_bench_dependence_analysis_with_input(benchmark):
    benchmark.pedantic(bench_full_graphs, rounds=3, iterations=1)

def test_bench_dependence_analysis_ugs_model(benchmark):
    """The UGS compiler's graph: no input dependences computed or stored."""
    benchmark.pedantic(bench_lean_graphs, rounds=3, iterations=1)
