"""The CI benchmark-regression gate.

Compares the freshly written ``results/*.json`` of the throughput
benchmarks against committed baselines in ``benchmarks/baselines/`` with
a symmetric tolerance band (default 25%):

* **higher-is-better** metrics (nests/sec, req/s) fail when the current
  value drops more than the tolerance below the baseline;
* **lower-is-better** metrics (p95 latency) fail when the current value
  grows more than the tolerance above the baseline.

``--check`` prints a markdown delta table (and appends it to
``$GITHUB_STEP_SUMMARY`` when set, or ``--summary PATH``), exiting 1 on
any out-of-band metric or missing baseline.  ``--update`` rewrites the
baselines from the current results -- the intentional-refresh path
(``make bench-baseline``).

The comparison logic is pure and imported by
``tests/test_bench_regression.py``, which proves the gate trips on a
synthetic 2x slowdown and passes on the committed baselines.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Mapping

_REPO = pathlib.Path(__file__).resolve().parent.parent

DEFAULT_TOLERANCE = 0.25
BASELINE_DIR = pathlib.Path(__file__).resolve().parent / "baselines"
RESULTS_DIR = _REPO / "results"

#: benchmark name -> results file and tracked metrics.  Each metric maps
#: to (path-into-the-results-payload, direction).
SPECS: dict[str, dict] = {
    "engine_throughput": {
        "results": "engine_throughput.json",
        "metrics": {
            "cold_nests_per_sec": (("cold", "nests_per_sec"), "higher"),
            # The warm pass finishes in single-digit milliseconds, so its
            # nests/sec is too noisy for a tolerance band; the hit rate
            # is the stable signal that memoization still works.
            "warm_tables_hit_rate": (("warm", "tables_hit_rate"),
                                     "higher"),
        },
    },
    "cold_analysis": {
        "results": "cold_analysis.json",
        "metrics": {
            "cold_nests_per_sec": (("fast", "nests_per_sec"), "higher"),
            "speedup_vs_seed": (("speedup_vs_seed",), "higher"),
            # The live seed measurement is recorded so a baseline refresh
            # freezes it as the reference the bench's speedup bar divides
            # by; ``bound`` pins the search bound that reference was
            # measured under (a config change shows up as a delta here
            # instead of silently shifting the bar).
            "seed_nests_per_sec": (("seed", "nests_per_sec"), "higher"),
            "bound": (("bound",), "higher"),
            # Per-stage cold latency from the engine's StageStats.  Only
            # the table build is gated: it dominates the cold path at
            # ~20ms per nest, so a 25% band is meaningful.  The other
            # stages (search, locality, dependence graph) run in the
            # low-millisecond range where the band is pure timer noise;
            # their p95s stay in the results payload for inspection.
            "build_tables_p95_s": (("stage_p95_s", "build_tables"),
                                   "lower"),
        },
    },
    "serve_throughput": {
        "results": "serve_throughput.json",
        "metrics": {
            "throughput_rps": (("throughput", "throughput_rps"), "higher"),
            "latency_p95_s": (("throughput", "latency_s", "p95"), "lower"),
            # The v2 binary-frame transport must keep beating the v1
            # JSON transport: the p50 ratio is self-normalizing (both
            # sides measured on the same box in the same run), and the
            # absolute frame throughput catches fast-path regressions
            # the ratio could hide.
            "wire_p50_ratio": (("wire", "p50_ratio"), "lower"),
            "wire_binary_rps": (("wire", "binary", "throughput_rps"),
                                "higher"),
        },
    },
    "cluster_throughput": {
        "results": "cluster_throughput.json",
        "metrics": {
            # Cluster latency and the single/cluster scaling ratio are
            # both quotient-of-noise on shared CI runners; absolute
            # routed throughput plus the merged-compute rate are the
            # stable signals that sharding still pays for itself.  The
            # merged rate is over *fresh* nests, so it cannot go vacuous
            # the way the old sticky_hit_rate did once the router L2
            # started answering repeats before they reached a shard.
            "cluster_throughput_rps": (("cluster", "throughput_rps"),
                                       "higher"),
            "merged_compute_rate": (("sticky", "merged_compute_rate"),
                                    "higher"),
        },
    },
    "reuse_profile": {
        "results": "reuse_profile.json",
        "metrics": {
            # Deterministic (seeded corpus, analytic model, exact
            # simulator), so drift here means the profile pass or the
            # conflict model changed behavior; the hard <=0.05 bar
            # lives in bench_reuse_profile.acceptance().
            "direct_mean_abs_error": (
                ("geometries", "direct_512", "mean_abs_error"), "lower"),
            "assoc4_mean_abs_error": (
                ("geometries", "assoc4_1024", "mean_abs_error"), "lower"),
            "assoc8_mean_abs_error": (
                ("geometries", "assoc8_2048", "mean_abs_error"), "lower"),
        },
    },
    "predict": {
        "results": "predict.json",
        "metrics": {
            # Accuracy is deterministic (fixed model, fixed seeded eval
            # slice), so the band only absorbs intentional model
            # refreshes; the hard >=0.85 bar lives in
            # bench_predict.acceptance().
            "held_out_top1": (("eval", "accuracy"), "higher"),
            # The mean-rate is the stable latency signal; the fast/exact
            # p99 *ratio* is a quotient of two tail percentiles (pure
            # noise on shared runners, same reason cluster dropped its
            # scaling ratio) and is gated by the hard 0.05x bar in
            # bench_predict.acceptance() instead.
            "fast_decisions_per_sec": (("latency", "fast_per_sec"),
                                       "higher"),
        },
    },
    "ugs_cache": {
        "results": "ugs_cache.json",
        "metrics": {
            "cached_nests_per_sec": (("cached", "nests_per_sec"),
                                     "higher"),
            # The cold cross-nest speedup: self-normalizing (both sides
            # measured in the same run) and hard-floored at 1.5x by
            # bench_ugs_cache.acceptance(); the band catches drift.
            "speedup": (("speedup",), "higher"),
            # Deterministic (seeded corpus, exact tables): any mismatch
            # means the signature over- or under-canonicalizes.
            "decision_mismatches": (("parity", "decision_mismatches"),
                                    "lower"),
            # Absolute traced-heap peak of the large streaming run; the
            # small/large *ratio* is a quotient of transient peaks (the
            # hard <=1.25x bar lives in the bench), but the absolute
            # working set regressing >25% means a cache stopped being
            # bounded.
            "stream_peak_mb": (("stream", "large", "peak_mb"), "lower"),
        },
    },
    "simd": {
        "results": "simd.json",
        "metrics": {
            # Fully deterministic (seeded corpus, fixed unroll vectors,
            # analytic cost model), so any drift means the packer or the
            # lane cost model changed behavior; the hard zero-mismatch
            # and >=30%-wins bars live in bench_simd.acceptance().
            "packable_fraction": (("estimates", "packable_fraction"),
                                  "higher"),
            "win_fraction": (("estimates", "win_fraction"), "higher"),
            "parity_mismatches": (("parity", "mismatches"), "lower"),
            "invariance_mismatches": (("invariance", "mismatches"),
                                      "lower"),
        },
    },
}

def extract(payload: Mapping, path: tuple) -> float:
    """Walk ``path`` into a results payload; raises KeyError if absent."""
    node = payload
    for key in path:
        node = node[key]
    return float(node)

def extract_metrics(name: str, payload: Mapping) -> dict[str, float]:
    """Every tracked metric of one benchmark from its results payload."""
    return {metric: extract(payload, path)
            for metric, (path, _direction) in SPECS[name]["metrics"].items()}

def compare(name: str, baseline: Mapping[str, float],
            current: Mapping[str, float],
            tolerance: float = DEFAULT_TOLERANCE) -> list[dict]:
    """Per-metric comparison rows for one benchmark.

    A row is out of band (``ok=False``) when a higher-is-better metric
    fell below ``baseline * (1 - tolerance)`` or a lower-is-better
    metric rose above ``baseline * (1 + tolerance)``.
    """
    rows = []
    for metric, (_path, direction) in SPECS[name]["metrics"].items():
        base = baseline.get(metric)
        cur = current.get(metric)
        if base is None or cur is None:
            rows.append({"benchmark": name, "metric": metric,
                         "baseline": base, "current": cur,
                         "direction": direction, "delta_pct": None,
                         "ok": False,
                         "note": "missing baseline or result"})
            continue
        delta_pct = (cur - base) / base * 100.0 if base else 0.0
        if direction == "higher":
            ok = cur >= base * (1.0 - tolerance)
        else:
            ok = cur <= base * (1.0 + tolerance)
        rows.append({"benchmark": name, "metric": metric,
                     "baseline": base, "current": cur,
                     "direction": direction, "delta_pct": delta_pct,
                     "ok": ok, "note": ""})
    return rows

def _format_number(value: float | None) -> str:
    if value is None:
        return "-"
    if abs(value) >= 100:
        return f"{value:.1f}"
    return f"{value:.4g}"

def markdown_table(rows: list[dict], tolerance: float) -> str:
    """The delta table for ``$GITHUB_STEP_SUMMARY``."""
    lines = [
        f"### Benchmark regression gate (tolerance ±{tolerance:.0%})",
        "",
        "| benchmark | metric | baseline | current | delta | status |",
        "|---|---|---:|---:|---:|:---:|",
    ]
    for row in rows:
        delta = ("-" if row["delta_pct"] is None
                 else f"{row['delta_pct']:+.1f}%")
        arrow = "higher=better" if row["direction"] == "higher" \
            else "lower=better"
        status = "✅" if row["ok"] else f"❌ {row['note']}".strip()
        lines.append(
            f"| {row['benchmark']} | {row['metric']} ({arrow}) "
            f"| {_format_number(row['baseline'])} "
            f"| {_format_number(row['current'])} "
            f"| {delta} | {status} |")
    return "\n".join(lines)

def load_json(path: pathlib.Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None

def check(results_dir: pathlib.Path, baseline_dir: pathlib.Path,
          tolerance: float) -> tuple[list[dict], bool]:
    """All comparison rows plus the overall verdict."""
    rows: list[dict] = []
    for name, spec in SPECS.items():
        baseline_doc = load_json(baseline_dir / f"{name}.json")
        results_doc = load_json(results_dir / spec["results"])
        baseline = (baseline_doc or {}).get("metrics", {})
        if results_doc is None:
            rows.extend({"benchmark": name, "metric": metric,
                         "baseline": baseline.get(metric), "current": None,
                         "direction": direction, "delta_pct": None,
                         "ok": False, "note": "no results file"}
                        for metric, (_p, direction)
                        in spec["metrics"].items())
            continue
        rows.extend(compare(name, baseline, extract_metrics(name,
                                                            results_doc),
                            tolerance))
    return rows, all(row["ok"] for row in rows)

def update(results_dir: pathlib.Path, baseline_dir: pathlib.Path) -> list[
        pathlib.Path]:
    """Rewrite the committed baselines from the current results."""
    written = []
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for name, spec in SPECS.items():
        results_doc = load_json(results_dir / spec["results"])
        if results_doc is None:
            print(f"skip {name}: no {spec['results']} under {results_dir}",
                  file=sys.stderr)
            continue
        target = baseline_dir / f"{name}.json"
        target.write_text(json.dumps({
            "benchmark": name,
            "source": spec["results"],
            "tolerance_hint": DEFAULT_TOLERANCE,
            "metrics": extract_metrics(name, results_doc),
        }, indent=2, sort_keys=True) + "\n")
        written.append(target)
    return written

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="compare results against the baselines")
    mode.add_argument("--update", action="store_true",
                      help="rewrite the baselines from the results")
    parser.add_argument("--results-dir", default=str(RESULTS_DIR))
    parser.add_argument("--baseline-dir", default=str(BASELINE_DIR))
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="fractional band, e.g. 0.25 = fail on >25%% "
                             "throughput drop or p95 growth")
    parser.add_argument("--summary", default=None,
                        help="append the markdown table here (default "
                             "$GITHUB_STEP_SUMMARY when set)")
    args = parser.parse_args(argv)

    results_dir = pathlib.Path(args.results_dir)
    baseline_dir = pathlib.Path(args.baseline_dir)

    if args.update:
        written = update(results_dir, baseline_dir)
        for path in written:
            print(f"baseline updated: {path}")
        return 0 if written else 1

    rows, ok = check(results_dir, baseline_dir, args.tolerance)
    table = markdown_table(rows, args.tolerance)
    print(table)
    summary_path = args.summary or os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        try:
            with open(summary_path, "a", encoding="utf-8") as handle:
                handle.write(table + "\n")
        except OSError as err:
            print(f"cannot append summary: {err}", file=sys.stderr)
    print(f"\nregression gate: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1

if __name__ == "__main__":
    sys.exit(main())
