"""Ablation: software-prefetch bandwidth (the section 6 future-work knob).

The balance model's miss term is gated by how many prefetches the machine
can issue; as bandwidth grows the cache model's miss term vanishes and
simulated cycles fall.
"""

from fractions import Fraction

import pytest

from conftest import write_artifact
from repro.experiments.ablation import run_prefetch_sweep
from repro.kernels.suite import cond7, dmxpy1, jacobi

KERNELS = [jacobi(), cond7(), dmxpy1()]
BANDWIDTHS = (Fraction(0), Fraction(1, 4), Fraction(1, 2), Fraction(1))

@pytest.fixture(scope="module")
def rows():
    return run_prefetch_sweep(BANDWIDTHS, kernels=KERNELS, bound=6)

def _format(rows):
    lines = ["Ablation: prefetch-issue bandwidth sweep",
             f"{'Loop':<10s} {'p':>5s} {'unroll':<12s} {'beta_L':>7s} "
             f"{'norm cycles':>11s}"]
    for r in rows:
        lines.append(f"{r.name:<10s} {str(r.bandwidth):>5s} "
                     f"{str(r.unroll):<12s} {float(r.balance):>7.2f} "
                     f"{r.normalized_cycles:>11.2f}")
    return "\n".join(lines)

def test_regenerate_prefetch_sweep(rows, results_dir):
    write_artifact(results_dir, "ablation_prefetch.txt", _format(rows))

def test_cycles_monotone_in_bandwidth(rows):
    by_kernel = {}
    for row in rows:
        by_kernel.setdefault(row.name, []).append(row)
    for name, entries in by_kernel.items():
        entries.sort(key=lambda r: r.bandwidth)
        cycles = [r.normalized_cycles for r in entries]
        for earlier, later in zip(cycles, cycles[1:]):
            assert later <= earlier + 0.02, (name, cycles)

def test_model_balance_falls_with_bandwidth(rows):
    by_kernel = {}
    for row in rows:
        by_kernel.setdefault(row.name, []).append(row)
    for name, entries in by_kernel.items():
        entries.sort(key=lambda r: r.bandwidth)
        assert entries[-1].balance <= entries[0].balance, name

def test_bench_sweep_one_kernel(benchmark):
    benchmark.pedantic(
        lambda: run_prefetch_sweep((Fraction(0), Fraction(1)),
                                   kernels=[jacobi(64)], bound=4),
        rounds=2, iterations=1)
