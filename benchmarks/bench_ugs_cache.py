"""Cross-nest UGS memoization: cold speedup, parity, streaming memory.

Three claims from the sub-structural cache (docs/PERFORMANCE.md):

* **cold speedup** -- a cold ``optimize_many`` over a seeded corpus with
  the UGS table cache runs >= 1.5x the fast path without it
  (``AnalysisEngine(ugs_cache=False)``), because distinct nests share
  uniformly generated sets up to translation and renaming;
* **parity** -- decisions are identical with and without the cache, and
  cache-served tables serialize bit-identically to fresh builds;
* **flat streaming memory** -- ``optimize_stream`` over a 10x larger
  corpus peaks at <= 1.25x the smaller corpus's traced heap (nothing
  materializes the corpus or the results).

Runs under pytest (``pytest benchmarks/bench_ugs_cache.py``) and as a
standalone script for the CI smoke job::

    python benchmarks/bench_ugs_cache.py --quick

Both modes write ``results/ugs_cache.txt`` and ``results/ugs_cache.json``
(consumed by the ``ugs_cache`` entry of ``benchmarks/regression.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
import tracemalloc

_REPO = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.corpus import CorpusConfig, iter_corpus
from repro.engine import AnalysisEngine
from repro.engine.ugscache import UgsTableCache
from repro.machine.presets import dec_alpha
from repro.unroll.serialize import tables_to_json
from repro.unroll.space import UnrollSpace
from repro.unroll.tables import build_tables

SPEEDUP_FLOOR = 1.5
PEAK_RATIO_CEILING = 1.25
SEED = 2026
BOUND = 4

def _corpus(count: int):
    return iter_corpus(CorpusConfig(seed=SEED), count=count)

def _cold_run(nests, machine, ugs_cache: bool) -> tuple[list, dict]:
    """One cold ``optimize_many`` on a fresh engine."""
    engine = AnalysisEngine(ugs_cache=ugs_cache)
    t0 = time.monotonic()
    report = engine.optimize_many(nests, machine, bound=BOUND)
    wall = time.monotonic() - t0
    counters = engine.metrics.snapshot()["counters"]
    hits = counters.get("cache.ugs.hit", 0)
    misses = counters.get("cache.ugs.miss", 0)
    decisions = [item.result.unroll if item.ok else None
                 for item in report.items]
    return decisions, {
        "wall_time_s": wall,
        "nests_per_sec": len(nests) / wall if wall else 0.0,
        "failures": sum(1 for item in report.items if not item.ok),
        "ugs_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
    }

def _timed_cold_pair(count: int, machine,
                     repeats: int = 3) -> tuple[int, dict, dict]:
    """Interleaved best-of-N cold A/B: without vs with the UGS cache.

    Interleaving plus per-side best-of keeps an asymmetric load spike
    (CI neighbours, GC) from landing entirely on one side of the ratio;
    decision parity is checked on every repeat.
    """
    nests = list(_corpus(count))
    mismatches = 0
    base = cached = None
    for _ in range(repeats):
        base_decisions, base_stats = _cold_run(nests, machine,
                                               ugs_cache=False)
        cached_decisions, cached_stats = _cold_run(nests, machine,
                                                   ugs_cache=True)
        mismatches += sum(1 for a, b in zip(base_decisions,
                                            cached_decisions) if a != b)
        if base is None or base_stats["wall_time_s"] < \
                base["wall_time_s"]:
            base = base_stats
        if cached is None or cached_stats["wall_time_s"] < \
                cached["wall_time_s"]:
            cached = cached_stats
    return mismatches, base, cached

def _table_parity(count: int) -> dict:
    """Cache-served tables vs fresh builds, compared by serialization."""
    cache = UgsTableCache()
    mismatches = 0
    for nest in _corpus(count):
        dims = tuple(range(nest.depth - 1))
        space = UnrollSpace(nest.depth, dims, (BOUND - 1,) * len(dims))
        fresh = build_tables(nest, space)
        served = build_tables(nest, space, ugs_cache=cache)
        if tables_to_json(fresh) != tables_to_json(served):
            mismatches += 1
    return {"checked": count, "table_mismatches": mismatches}

def _streamed_peak(count: int, machine) -> dict:
    """Peak traced heap while consuming ``optimize_stream`` end to end.

    The corpus is generated lazily and every item is dropped after one
    field read, so the peak reflects the engine's *working set* -- the
    bounded LRUs plus the dedup window -- not the corpus size.  The
    engine is sized so every cache saturates well before the smaller
    corpus (64-entry memo LRUs, 256 UGS signatures, 128-item window):
    flatness then proves nothing accumulates per nest, rather than just
    that the default caps exceed both corpus sizes.
    """
    engine = AnalysisEngine(capacity=64)
    engine.ugs_cache.capacity = 256
    items = failures = 0
    tracemalloc.start()
    tracemalloc.reset_peak()
    t0 = time.monotonic()
    for item in engine.optimize_stream(_corpus(count), machine,
                                       bound=3, window=128):
        items += 1
        failures += 0 if item.ok else 1
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    wall = time.monotonic() - t0
    counters = engine.metrics.snapshot()["counters"]
    return {
        "nests": count,
        "items": items,
        "failures": failures,
        "wall_time_s": wall,
        "nests_per_sec": count / wall if wall else 0.0,
        "peak_mb": peak / 1e6,
        "dedup_hits": counters.get("engine.dedup.hits", 0),
    }

def run_bench(quick: bool = False) -> dict:
    machine = dec_alpha()
    corpus_size = 300 if quick else 600
    parity_sample = 40 if quick else 80
    # The small size sits past the point where every bounded cache has
    # saturated (the 256-signature UGS LRU fills by ~350 nests), so the
    # ratio measures per-nest accumulation, not cache fill.
    stream_small, stream_large = (400, 1600) if quick else (1000, 10000)

    decision_mismatches, base, cached = _timed_cold_pair(
        corpus_size, machine, repeats=2 if quick else 3)
    speedup = (base["wall_time_s"] / cached["wall_time_s"]
               if cached["wall_time_s"] else float("inf"))

    parity = _table_parity(parity_sample)
    parity["decision_mismatches"] = decision_mismatches

    small = _streamed_peak(stream_small, machine)
    large = _streamed_peak(stream_large, machine)
    ratio = (large["peak_mb"] / small["peak_mb"]
             if small["peak_mb"] else float("inf"))

    return {
        "quick": quick,
        "bound": BOUND,
        "corpus": corpus_size,
        "baseline": base,
        "cached": cached,
        "speedup": speedup,
        "parity": parity,
        "stream": {"small": small, "large": large, "peak_ratio": ratio},
        "gates": {
            "speedup_floor": SPEEDUP_FLOOR,
            "peak_ratio_ceiling": PEAK_RATIO_CEILING,
        },
    }

def acceptance(payload: dict) -> list[str]:
    """Empty when every gate holds; otherwise the violated claims."""
    problems = []
    if payload["speedup"] < SPEEDUP_FLOOR:
        problems.append(f"cold speedup {payload['speedup']:.2f}x < "
                        f"{SPEEDUP_FLOOR}x")
    if payload["parity"]["decision_mismatches"]:
        problems.append(f"{payload['parity']['decision_mismatches']} "
                        f"decision mismatches")
    if payload["parity"]["table_mismatches"]:
        problems.append(f"{payload['parity']['table_mismatches']} "
                        f"table mismatches")
    if payload["stream"]["peak_ratio"] > PEAK_RATIO_CEILING:
        problems.append(f"streaming peak ratio "
                        f"{payload['stream']['peak_ratio']:.2f} > "
                        f"{PEAK_RATIO_CEILING}")
    if payload["baseline"]["failures"] or payload["cached"]["failures"]:
        problems.append("batch failures")
    return problems

def format_bench(payload: dict) -> str:
    base, cached = payload["baseline"], payload["cached"]
    small, large = payload["stream"]["small"], payload["stream"]["large"]
    lines = [
        f"UGS table cache over a {payload['corpus']}-nest seeded corpus "
        f"(bound {payload['bound']})",
        f"{'configuration':<26s} {'wall':>8s} {'nests/s':>8s} "
        f"{'ugs hit rate':>13s}",
        f"{'fast path, no ugs cache':<26s} {base['wall_time_s']:>7.3f}s "
        f"{base['nests_per_sec']:>8.1f} {'-':>12s}",
        f"{'fast path + ugs cache':<26s} {cached['wall_time_s']:>7.3f}s "
        f"{cached['nests_per_sec']:>8.1f} "
        f"{100 * cached['ugs_hit_rate']:>11.0f}%",
        "",
        f"cold speedup from cross-nest sharing: {payload['speedup']:.2f}x "
        f"(gate >= {SPEEDUP_FLOOR}x)",
        f"parity: {payload['parity']['decision_mismatches']} decision / "
        f"{payload['parity']['table_mismatches']} table mismatches over "
        f"{payload['parity']['checked']} sampled nests",
        "",
        f"optimize_stream peak heap: {small['peak_mb']:.1f} MB at "
        f"{small['nests']} nests -> {large['peak_mb']:.1f} MB at "
        f"{large['nests']} nests "
        f"(ratio {payload['stream']['peak_ratio']:.2f}, gate <= "
        f"{PEAK_RATIO_CEILING})",
        f"stream dedup hits: {small['dedup_hits']} / "
        f"{large['dedup_hits']}",
    ]
    problems = acceptance(payload)
    lines.append("")
    lines.append("acceptance: " +
                 ("PASS" if not problems else "FAIL: " +
                  "; ".join(problems)))
    return "\n".join(lines)

def write_results(payload: dict, results_dir: pathlib.Path) -> None:
    results_dir.mkdir(exist_ok=True)
    (results_dir / "ugs_cache.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    (results_dir / "ugs_cache.txt").write_text(
        format_bench(payload) + "\n")

# -- pytest mode --------------------------------------------------------------

def test_ugs_cache(results_dir):
    payload = run_bench(quick=True)
    write_results(payload, results_dir)
    print("\n" + format_bench(payload))
    assert acceptance(payload) == []

# -- script mode --------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus and stream sizes (CI smoke)")
    parser.add_argument("--results-dir", default=str(_REPO / "results"))
    args = parser.parse_args(argv)

    payload = run_bench(quick=args.quick)
    write_results(payload, pathlib.Path(args.results_dir))
    print(format_bench(payload))
    return 0 if not acceptance(payload) else 1

if __name__ == "__main__":
    sys.exit(main())
