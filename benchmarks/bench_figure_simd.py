"""The Figure-8/9 analog with a SIMD axis on the 19 Table 2 loops.

Each row runs the balance search twice on the 4-lane ``future_wide``
machine -- the paper's scalar objective and the ``vectorize=True`` lane
cost objective (docs/VECTORIZE.md) -- then packs and costs both winners,
so the artifact shows what the scalar choice would vectorize to next to
what the vectorized search found.
"""

import pytest

from conftest import write_artifact
from repro.experiments.simd_figure import format_simd_figure, run_simd_figure
from repro.machine.presets import future_wide

BOUND = 8

@pytest.fixture(scope="module")
def simd_rows():
    return run_simd_figure(future_wide(), bound=BOUND)

def test_regenerate_figure_simd(simd_rows, results_dir):
    write_artifact(results_dir, "figure_simd.txt",
                   format_simd_figure(
                       simd_rows,
                       "SIMD axis: future-wide machine, scalar vs "
                       "vectorized objective (est. cycles/iteration)"))
    assert len(simd_rows) == 19

def test_vectorized_objective_never_loses(simd_rows):
    """The SIMD search may only re-rank among candidates the scalar
    search already considered, so its packed estimate can never exceed
    the packed estimate at the scalar choice."""
    for row in simd_rows:
        assert row.cycles_simd <= row.cycles_scalar_packed + 1e-9, row.name

def test_packing_pays_on_the_wide_machine(simd_rows):
    """The headline numbers docs/VECTORIZE.md quotes: a solid minority
    of the suite packs, and every packed loop beats its scalar issue
    estimate."""
    packable = [row for row in simd_rows if row.packs]
    assert len(packable) >= 6
    improved = [row for row in simd_rows
                if row.cycles_simd < row.cycles_scalar]
    assert len(improved) >= 6
    for row in packable:
        assert row.speedup >= 1.0, row.name

def test_benchmark_simd_sweep(benchmark):
    from repro.kernels import all_kernels

    kernels = all_kernels()[:4]
    benchmark(lambda: run_simd_figure(future_wide(), bound=4,
                                      kernels=kernels))
