"""Table 2: the test-loop roster with the model's view of each loop."""

import pytest

from conftest import write_artifact
from repro.experiments.table2 import format_table2, run_table2
from repro.machine import dec_alpha

@pytest.fixture(scope="module")
def rows():
    return run_table2(dec_alpha())

def test_regenerate_table2(rows, results_dir):
    write_artifact(results_dir, "table2.txt", format_table2(rows))
    assert len(rows) == 19

def test_all_loops_memory_bound(rows):
    """Section 5.2: the loops are chosen from those not already balanced."""
    machine = dec_alpha()
    assert all(row.original_balance > machine.balance for row in rows)

def test_bench_roster_analysis(benchmark):
    benchmark.pedantic(run_table2, rounds=3, iterations=1)
