"""Extension figures: the 19-loop sweep on the section-6 machine classes.

The paper closes by arguing its model is what machines with larger
register files, deeper memory hierarchies and prefetch support will need.
These runs put numbers on that: an out-of-order mid-90s design (MIPS
R10000-like) and the projected wide machine with hardware prefetch.
"""

import pytest

from conftest import write_artifact
from repro.experiments.figures import format_figure, run_figure
from repro.machine.presets import future_wide, mips_r10k

@pytest.fixture(scope="module")
def mips_rows():
    return run_figure(mips_r10k(), bound=6)

@pytest.fixture(scope="module")
def wide_rows():
    return run_figure(future_wide(), bound=8)

def test_regenerate_mips(mips_rows, results_dir):
    write_artifact(results_dir, "figure_ext_mips.txt",
                   format_figure(mips_rows,
                                 "Extension: MIPS R10K-like (normalized "
                                 "execution time)"))
    assert len(mips_rows) == 19

def test_regenerate_future_wide(wide_rows, results_dir):
    write_artifact(results_dir, "figure_ext_future.txt",
                   format_figure(wide_rows,
                                 "Extension: future-wide machine "
                                 "(normalized execution time)"))
    assert len(wide_rows) == 19

def test_mips_gap_is_bounded(mips_rows):
    """On the R10K's mid-size cache the model's innermost-only localized
    space over-unrolls a few loops (the cache was already capturing their
    outer-loop reuse), costing up to ~12% -- the estimation-accuracy gap
    the paper's own section 5.3 discussion concedes.  The regression must
    stay bounded and the suite must still win overall."""
    for row in mips_rows:
        assert row.normalized_cache <= 1.15, row.name
    mean = sum(r.normalized_cache for r in mips_rows) / len(mips_rows)
    assert mean < 0.95

def test_wide_machine_gains_are_larger(mips_rows, wide_rows):
    """The wider the machine, the more unroll-and-jam matters: mean
    normalized time on the future machine beats the R10K's."""
    mean_mips = sum(r.normalized_cache for r in mips_rows) / 19
    mean_wide = sum(r.normalized_cache for r in wide_rows) / 19
    assert mean_wide <= mean_mips + 0.02

def test_wide_registers_enable_deeper_unrolling(mips_rows, wide_rows):
    from repro.unroll.space import body_copies

    deeper = 0
    for mips_row, wide_row in zip(mips_rows, wide_rows):
        if body_copies(wide_row.unroll_cache) > \
                body_copies(mips_row.unroll_cache):
            deeper += 1
    assert deeper >= 5

def test_bench_one_wide_evaluation(benchmark):
    from repro.experiments.figures import evaluate_kernel
    from repro.kernels.suite import cond9

    kernel = cond9(96)
    benchmark.pedantic(
        lambda: evaluate_kernel(kernel, future_wide(), bound=4),
        rounds=2, iterations=1)
