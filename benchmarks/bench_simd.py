"""SLP packing gates: executor parity, estimate wins, scalar invariance.

Three hard bars for ``repro.simd`` (docs/VECTORIZE.md), all over the
seeded synthetic corpus:

* **parity** -- ``run_packed`` must be bit-identical to the scalar
  ``run_unrolled`` oracle on every corpus nest at a fixed unroll vector
  (zero array mismatches: the lockstep schedule preserves the jammed
  semantics exactly);
* **wins** -- of the nests the packer can vectorize at all (at least
  one pack), at least ``WIN_BAR`` (30%) must get a *lower* vectorized
  cycle estimate than the scalar issue estimate on the 4-lane
  ``future_wide`` machine;
* **invariance** -- the default search must not move: with
  ``vectorize=False`` the decision is bit-identical to the plain call,
  and on a scalar machine (``dec_alpha``) ``vectorize=True`` falls back
  to the identical scalar decision.

The regression gate additionally tracks the (deterministic) packable
and win fractions against ``benchmarks/baselines/simd.json``.

Runs under pytest (``pytest benchmarks/bench_simd.py``) and as a
standalone script for the CI job::

    python benchmarks/bench_simd.py --quick

Both modes write ``results/simd.txt`` and ``results/simd.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
import zlib

import numpy as np

_REPO = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.corpus import CorpusConfig
from repro.corpus.generator import generate_corpus
from repro.ir.interp import run_unrolled
from repro.ir.packed import run_packed
from repro.machine.presets import dec_alpha, future_wide
from repro.simd import vectorize_nest
from repro.unroll.optimize import choose_unroll

#: Of the packable nests, at least this fraction must see a lower
#: vectorized estimate (the ISSUE bar).
WIN_BAR = 0.30

#: The deterministic unroll vector evaluated per nest depth (innermost
#: always 0; three extra copies fill a 4-lane machine exactly).
U_BY_DEPTH = {1: (0,), 2: (3, 0), 3: (1, 1, 0)}

#: Per-loop trip count by depth, sized so the fuzzed execution stays
#: cheap while every main/epilogue split is exercised.
N_BY_DEPTH = {1: 16, 2: 10, 3: 6}

CORPUS_NESTS = 400
CORPUS_NESTS_QUICK = 120
SEARCH_SLICE = 80
SEARCH_SLICE_QUICK = 40
SEARCH_BOUND = 4

def _shapes(nest) -> dict[str, tuple[int, ...]]:
    """One square shape per array, wide enough for every offset ref."""
    n = N_BY_DEPTH[nest.depth]
    dims: dict[str, int] = {}
    for statement in nest.body:
        for ref in statement.array_reads() + statement.array_writes():
            dims[ref.array] = max(dims.get(ref.array, 0),
                                  len(ref.subscripts))
    return {array: (n + 5,) * count for array, count in dims.items()}

def _parity(nest, u) -> bool:
    """run_packed vs run_unrolled, bit for bit, on seeded random data."""
    n = N_BY_DEPTH[nest.depth]
    bindings = {name: n for name in nest.parameters()}
    rng = np.random.default_rng(zlib.crc32(nest.name.encode()))
    base = {name: rng.standard_normal(shape)
            for name, shape in _shapes(nest).items()}
    ref = {k: v.copy() for k, v in base.items()}
    got = {k: v.copy() for k, v in base.items()}
    run_unrolled(nest, u, bindings, ref, {})
    run_packed(nest, u, bindings, got, {}, width=4)
    return all(np.array_equal(ref[k], got[k]) for k in base)

def run_bench(quick: bool = False) -> dict:
    """The full experiment; returns the JSON-ready payload."""
    count = CORPUS_NESTS_QUICK if quick else CORPUS_NESTS
    nests = generate_corpus(CorpusConfig(routines=count))
    machine = future_wide()
    scalar_machine = dec_alpha()

    t0 = time.monotonic()
    mismatches: list[str] = []
    packable = 0
    improved = 0
    speedups: list[float] = []
    skipped = 0
    for nest in nests:
        u = U_BY_DEPTH[nest.depth]
        try:
            if not _parity(nest, u):
                mismatches.append(nest.name)
        except Exception:
            skipped += 1
            continue
        report = vectorize_nest(nest, u, machine)
        if report.packs:
            packable += 1
            if report.estimate.improved:
                improved += 1
                speedups.append(float(report.estimate.speedup))

    # Scalar invariance over a deterministic slice of the corpus.
    slice_n = SEARCH_SLICE_QUICK if quick else SEARCH_SLICE
    invariance_mismatches: list[str] = []
    for nest in nests[:slice_n]:
        plain = choose_unroll(nest, machine, bound=SEARCH_BOUND)
        off = choose_unroll(nest, machine, bound=SEARCH_BOUND,
                            vectorize=False)
        if (plain.unroll, plain.objective) != (off.unroll, off.objective):
            invariance_mismatches.append(f"{nest.name}:flag")
        scalar = choose_unroll(nest, scalar_machine, bound=SEARCH_BOUND)
        fallback = choose_unroll(nest, scalar_machine, bound=SEARCH_BOUND,
                                 vectorize=True)
        if (scalar.unroll, scalar.objective) \
                != (fallback.unroll, fallback.objective):
            invariance_mismatches.append(f"{nest.name}:fallback")

    win_fraction = improved / packable if packable else 0.0
    return {
        "quick": quick,
        "corpus_nests": len(nests),
        "skipped": skipped,
        "wall_s": time.monotonic() - t0,
        "win_bar": WIN_BAR,
        "parity": {
            "checked": len(nests) - skipped,
            "mismatches": len(mismatches),
            "mismatch_nests": mismatches[:10],
        },
        "estimates": {
            "packable": packable,
            "packable_fraction": packable / len(nests) if nests else 0.0,
            "improved": improved,
            "win_fraction": win_fraction,
            "mean_speedup": (sum(speedups) / len(speedups)
                             if speedups else 1.0),
        },
        "invariance": {
            "checked": slice_n,
            "mismatches": len(invariance_mismatches),
            "mismatch_nests": invariance_mismatches[:10],
        },
    }

def acceptance(payload: dict) -> tuple[bool, list[str]]:
    """The hard bars: zero parity/invariance mismatches, enough wins."""
    problems = []
    if payload["parity"]["mismatches"]:
        problems.append(
            f"packed executor diverged from run_unrolled on "
            f"{payload['parity']['mismatches']} nests: "
            f"{payload['parity']['mismatch_nests']}")
    if payload["parity"]["checked"] < payload["corpus_nests"] // 2:
        problems.append(
            f"parity checked only {payload['parity']['checked']} of "
            f"{payload['corpus_nests']} nests")
    est = payload["estimates"]
    if not est["packable"]:
        problems.append("no corpus nest was packable at all")
    elif est["win_fraction"] < WIN_BAR:
        problems.append(
            f"only {est['win_fraction']:.0%} of packable nests improved "
            f"(bar {WIN_BAR:.0%})")
    if payload["invariance"]["mismatches"]:
        problems.append(
            f"vectorize flag changed the scalar decision on "
            f"{payload['invariance']['mismatches']} nests: "
            f"{payload['invariance']['mismatch_nests']}")
    return not problems, problems

def format_simd(payload: dict) -> str:
    parity = payload["parity"]
    est = payload["estimates"]
    inv = payload["invariance"]
    return "\n".join([
        f"SLP packing gates ({payload['corpus_nests']} corpus nests, "
        f"{payload['wall_s']:.1f}s)",
        "",
        f"parity:     {parity['checked']} nests executed, "
        f"{parity['mismatches']} mismatches",
        f"estimates:  {est['packable']} packable "
        f"({est['packable_fraction']:.0%} of corpus), "
        f"{est['improved']} improved "
        f"({est['win_fraction']:.0%} of packable, bar {WIN_BAR:.0%}), "
        f"mean est. speedup {est['mean_speedup']:.2f}x",
        f"invariance: {inv['checked']} nests searched both ways, "
        f"{inv['mismatches']} decision changes",
    ])

def write_results(payload: dict, results_dir: pathlib.Path) -> None:
    results_dir.mkdir(exist_ok=True)
    (results_dir / "simd.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    (results_dir / "simd.txt").write_text(format_simd(payload) + "\n")

# -- pytest mode --------------------------------------------------------------

def test_simd_gates(results_dir):
    payload = run_bench(quick=True)
    write_results(payload, results_dir)
    print("\n" + format_simd(payload))
    ok, problems = acceptance(payload)
    assert ok, problems

# -- script mode --------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus slice (CI smoke)")
    parser.add_argument("--results-dir", default=str(_REPO / "results"))
    args = parser.parse_args(argv)

    payload = run_bench(quick=args.quick)
    write_results(payload, pathlib.Path(args.results_dir))
    print(format_simd(payload))
    ok, problems = acceptance(payload)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 0 if ok else 1

if __name__ == "__main__":
    sys.exit(main())
