"""Ablation (section 5.3): table-based unroll selection vs the
Wolf-Maydan-Chen brute force.

Both must reach the same objective value; the point of the paper's tables
is reaching it *without materializing a single unrolled body*.  The
benchmark times both optimizers on the same search space.
"""

import pytest

from conftest import write_artifact
from repro.baselines.brute_force import brute_force_choose
from repro.experiments.ablation import run_bruteforce_parity
from repro.kernels.suite import cond9, dmxpy1, jacobi, mmjik, shal, vpenta7
from repro.machine import dec_alpha
from repro.unroll.optimize import choose_unroll

KERNELS = [jacobi(), cond9(), dmxpy1(), vpenta7(), shal(), mmjik()]

@pytest.fixture(scope="module")
def rows():
    return run_bruteforce_parity(dec_alpha(), bound=4, kernels=KERNELS)

def _format(rows):
    lines = ["Ablation: table model vs Wolf-Maydan-Chen brute force",
             f"{'Loop':<10s} {'u(table)':<12s} {'u(brute)':<12s} "
             f"{'match':>5s} {'t_table':>8s} {'t_brute':>8s} {'bodies':>6s}"]
    for r in rows:
        lines.append(
            f"{r.name:<10s} {str(r.table_unroll):<12s} "
            f"{str(r.brute_unroll):<12s} {str(r.objectives_match):>5s} "
            f"{r.table_seconds:>7.3f}s {r.brute_seconds:>7.3f}s "
            f"{r.bodies_materialized:>6d}")
    return "\n".join(lines)

def test_regenerate_parity_table(rows, results_dir):
    write_artifact(results_dir, "ablation_brute_force.txt", _format(rows))

def test_objectives_always_match(rows):
    for row in rows:
        assert row.objectives_match, row.name

def test_brute_force_materializes_every_vector(rows):
    for row in rows:
        assert row.bodies_materialized >= 5

def test_bench_table_optimizer(benchmark):
    kernel = mmjik(16)
    benchmark.pedantic(lambda: choose_unroll(kernel.nest, dec_alpha(),
                                             bound=4),
                       rounds=3, iterations=1)

def test_bench_brute_force_optimizer(benchmark):
    kernel = mmjik(16)
    space = choose_unroll(kernel.nest, dec_alpha(), bound=4).space
    benchmark.pedantic(lambda: brute_force_choose(kernel.nest, dec_alpha(),
                                                  space),
                       rounds=3, iterations=1)
