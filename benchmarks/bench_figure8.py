"""Figure 8: normalized execution time of the 19 loops on the DEC Alpha
model -- Original vs No-Cache-model unrolling vs Cache-model unrolling.

Shape assertions mirror the paper's reading of the figure: the transformed
loops never lose badly, many win substantially, and the cache-aware model
dominates the cache-oblivious one on the machine where misses are
expensive.
"""

import pytest

from conftest import write_artifact
from repro.experiments.figures import evaluate_kernel, format_figure, run_figure
from repro.kernels.suite import dmxpy1
from repro.machine import dec_alpha

@pytest.fixture(scope="module")
def rows():
    return run_figure(dec_alpha(), bound=6)

def test_regenerate_figure8(rows, results_dir):
    write_artifact(results_dir, "figure8.txt",
                   format_figure(rows, "Figure 8: DEC Alpha (normalized "
                                 "execution time)"))
    assert len(rows) == 19

def test_no_pessimization(rows):
    for row in rows:
        assert row.normalized_cache <= 1.05, row.name

def test_substantial_speedups_exist(rows):
    """Paper: speedups on the order of 2 are common."""
    wins = [r for r in rows if r.normalized_cache <= 0.75]
    assert len(wins) >= 5, [(r.name, r.normalized_cache) for r in rows]

def test_cache_model_at_least_matches_no_cache_on_average(rows):
    mean_cache = sum(r.normalized_cache for r in rows) / len(rows)
    mean_nc = sum(r.normalized_no_cache for r in rows) / len(rows)
    assert mean_cache <= mean_nc + 0.01

def test_cache_model_strictly_wins_somewhere(rows):
    """The point of Figure 8: on the small-cache Alpha, modelling misses
    changes decisions for the better on several loops."""
    strict = [r for r in rows
              if r.normalized_cache < r.normalized_no_cache - 0.02]
    assert len(strict) >= 3, [(r.name, r.normalized_no_cache,
                               r.normalized_cache) for r in rows]

def test_bench_one_kernel_evaluation(benchmark):
    kernel = dmxpy1(96)
    benchmark.pedantic(lambda: evaluate_kernel(kernel, dec_alpha(), bound=4),
                       rounds=2, iterations=1)
