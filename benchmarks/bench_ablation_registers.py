"""Ablation: the register-pressure constraint (sections 5.3 and 6).

The paper attributes Wolf et al.'s unfavourable comparison to unrolling
chosen *without* register limits; here we sweep the register file and
check the constraint behaves: unroll amounts shrink monotonically with the
file and predicted pressure never exceeds it.  Section 6's future work
(machines with larger register sets) falls out of the same sweep.
"""

import pytest

from conftest import write_artifact
from repro.experiments.ablation import run_register_sweep
from repro.kernels.suite import cond9, dmxpy1, jacobi, mmjik, shal
from repro.unroll.space import body_copies

KERNELS = [jacobi(), cond9(), dmxpy1(), shal(), mmjik()]
SIZES = (8, 16, 32, 64)

@pytest.fixture(scope="module")
def rows():
    return run_register_sweep(SIZES, kernels=KERNELS, bound=6)

def _format(rows):
    lines = ["Ablation: register-file sweep",
             f"{'Loop':<10s} {'regs':>4s} {'unroll':<12s} {'pressure':>8s} "
             f"{'norm cycles':>11s}"]
    for r in rows:
        lines.append(f"{r.name:<10s} {r.registers:>4d} {str(r.unroll):<12s} "
                     f"{r.predicted_registers:>8d} "
                     f"{r.normalized_cycles:>11.2f}")
    return "\n".join(lines)

def test_regenerate_register_sweep(rows, results_dir):
    write_artifact(results_dir, "ablation_registers.txt", _format(rows))

def test_pressure_respects_file(rows):
    for row in rows:
        assert row.predicted_registers <= row.registers, row

def test_unroll_monotone_in_registers(rows):
    by_kernel = {}
    for row in rows:
        by_kernel.setdefault(row.name, []).append(row)
    for name, entries in by_kernel.items():
        entries.sort(key=lambda r: r.registers)
        copies = [body_copies(r.unroll) for r in entries]
        assert copies == sorted(copies), (name, copies)

def test_large_files_enable_more_unrolling(rows):
    """Section 6: bigger register sets let the transformation go further
    on at least some loops."""
    by_kernel = {}
    for row in rows:
        by_kernel.setdefault(row.name, {})[row.registers] = row
    grew = sum(1 for entries in by_kernel.values()
               if body_copies(entries[64].unroll)
               > body_copies(entries[8].unroll))
    assert grew >= 2

def test_bench_sweep_one_kernel(benchmark):
    benchmark.pedantic(
        lambda: run_register_sweep((8, 32), kernels=[dmxpy1(64)], bound=4),
        rounds=2, iterations=1)
