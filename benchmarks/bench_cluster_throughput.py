"""Cluster vs single-process serving: scaling, sticky reuse, federation.

Measures the claims of docs/CLUSTER.md over real processes and sockets:

* **scaling** -- the same warm sweep over the Table 2 kernels against a
  single-process server and against ``--workers N`` shards behind the
  router.  The acceptance bar is hardware-aware: perfect scaling is
  ``min(workers, cpu_count)`` (worker processes cannot beat physical
  cores -- on the 1-core CI container the honest bar is "the router hop
  does not halve throughput", while on a 4-core box 4 workers must
  deliver at least ~2x the single process);
* **sticky reuse** -- a duplicate-heavy workload (50% repeated nests,
  *fresh* structurally-unique corpus routines the cluster has never
  seen, so no phase can ride an earlier phase's warmth) must merge the
  duplicate compute away: between the router's L2 result cache and the
  consistent-hash routing that lands repeats on the shard that already
  computed them, at least ``MERGED_COMPUTE_BAR`` of the duplicate
  requests must finish without a fresh engine compute call;
* **federation** -- the router's merged ``GET /metrics`` must account
  for every 2xx the shards produced.

Runs under pytest (``pytest benchmarks/bench_cluster_throughput.py``)
and standalone::

    python benchmarks/bench_cluster_throughput.py --quick

Both modes write ``results/cluster_throughput.json`` and the formatted
``results/cluster_throughput.txt``; the regression gate tracks the
cluster req/s and the sticky reuse rate against
``benchmarks/baselines/cluster_throughput.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

_REPO = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.cluster import ClusterConfig, ClusterThread
from repro.engine import AnalysisEngine
from repro.kernels import all_kernels
from repro.serve.batcher import BatchConfig
from repro.serve.client import ServeClient, build_workload, run_load
from repro.serve.server import ServeConfig, ServerThread

#: Required fraction of ideal hardware-aware scaling.  The router's L2
#: result cache answers warm repeats at the front door without a worker
#: hop, so even on a 1-core box the router must not cost more than 10%.
SCALING_EFFICIENCY_BAR = 0.90

#: Fraction of *duplicate* sticky-phase requests that must complete
#: without a fresh engine compute call (router L2 hit, on-shard result
#: cache, or in-flight coalescing).  The workload is fresh unseen nests,
#: so the denominator cannot be satisfied vacuously by earlier warmth.
MERGED_COMPUTE_BAR = 0.75

def _sweep(passes: int) -> list:
    names = [kernel.name for kernel in all_kernels()]
    return build_workload(passes * len(names), duplicate_fraction=0.0,
                          nests=names * passes)

def _fresh_sticky_workload(n_unique: int) -> tuple[list, int]:
    """A 50%-duplicate workload over ``n_unique`` corpus routines no
    other phase has touched, deduplicated by structural key so the
    unique count in the merged-compute denominator is exact."""
    from repro import api
    from repro.corpus.generator import CorpusConfig, generate_corpus

    specs: list[dict] = []
    seen: set = set()
    for nest in generate_corpus(CorpusConfig(routines=4 * n_unique,
                                             seed=20260808, max_depth=2,
                                             max_statements=2)):
        key = nest.structural_key()
        if key in seen:
            continue
        seen.add(key)
        specs.append(api.serialize_nest(nest))
        if len(specs) == n_unique:
            break
    workload = build_workload(2 * len(specs), duplicate_fraction=0.5,
                              nests=specs)
    return workload, len(specs)

def run_cluster_benchmark(workers: int = 2, concurrency: int = 8,
                          passes: int = 4, bound: int = 4,
                          quick: bool = False) -> dict:
    if quick:
        concurrency, passes, bound = 4, 2, 3
    kernel_count = len(all_kernels())
    cpu_count = os.cpu_count() or 1
    expected_scaling = max(1, min(workers, cpu_count))

    # The scaling ratio is a quotient of two throughput measurements on
    # a shared box, so each side runs ``trials`` warm sweeps and the
    # ratio compares best against best -- scheduler noise only ever
    # subtracts from a trial, never adds.
    trials = 3

    def _best(results: list[dict]) -> dict:
        best = max(results, key=lambda r: r["throughput_rps"])
        return dict(best, trials_rps=[r["throughput_rps"] for r in results])

    # Phase 1: the single-process reference, same batch knobs.
    config = ServeConfig(port=0, batch=BatchConfig(deadline_s=0.005,
                                                   max_batch=32, threads=4))
    with ServerThread(config, AnalysisEngine()) as handle:
        run_load("127.0.0.1", handle.port, _sweep(1),
                 concurrency=concurrency, bound=bound)  # warm the engine
        single = _best([run_load("127.0.0.1", handle.port, _sweep(passes),
                                 concurrency=concurrency, bound=bound)
                        for _ in range(trials)])

    # Phase 2 + 3: the sharded cluster.
    cluster_config = ClusterConfig(workers=workers, port=0,
                                   probe_interval_s=0.25,
                                   worker_deadline_ms=5.0,
                                   worker_batch_max=32)
    with ClusterThread(cluster_config) as handle:
        probe = ServeClient(port=handle.port)
        run_load("127.0.0.1", handle.port, _sweep(1),
                 concurrency=concurrency, bound=bound)  # warm every shard
        cluster = _best([run_load("127.0.0.1", handle.port, _sweep(passes),
                                  concurrency=concurrency, bound=bound)
                         for _ in range(trials)])

        # Sticky phase: 50% duplicates over *fresh* unseen nests, fresh
        # counters read around it -- earlier phases cannot donate warmth.
        sticky_load, unique_count = _fresh_sticky_workload(
            10 if quick else kernel_count)
        _, before = probe.metrics()
        sticky = run_load("127.0.0.1", handle.port, sticky_load,
                          concurrency=concurrency, bound=bound)
        _, after = probe.metrics()
        probe.close()

    def merged(doc: dict, counter: str) -> int:
        return doc["metrics"]["counters"].get(counter, 0)

    def router_counter(doc: dict, counter: str) -> int:
        return doc["router"]["metrics"]["counters"].get(counter, 0)

    sticky_requests = len(sticky_load)
    duplicates = sticky_requests - unique_count
    compute_delta = (merged(after, "engine.optimize")
                     - merged(before, "engine.optimize"))
    reuse_delta = ((merged(after, "serve.coalesced")
                    + merged(after, "serve.cache.hit"))
                   - (merged(before, "serve.coalesced")
                      + merged(before, "serve.cache.hit")))
    l2_delta = (router_counter(after, "cluster.l2_hits")
                - router_counter(before, "cluster.l2_hits"))
    sticky["unique_nests"] = unique_count
    sticky["engine_optimize_calls"] = compute_delta
    sticky["compute_per_request"] = compute_delta / sticky_requests
    sticky["l2_hits"] = l2_delta
    sticky["sticky_hit_rate"] = max(0.0, reuse_delta / sticky_requests)
    # Of the duplicate requests, how many were answered without a fresh
    # engine compute?  1.0 = every repeat merged (L2, result cache, or
    # coalescing); 0.0 = every repeat recomputed somewhere.
    sticky["merged_compute_rate"] = (
        max(0.0, min(1.0, (sticky_requests - compute_delta) / duplicates))
        if duplicates else 1.0)

    shard_2xx = {slot: doc["metrics"]["counters"]
                 .get("serve.responses_2xx", 0)
                 for slot, doc in after["shards"].items()}
    return {
        "kernels": kernel_count,
        "bound": bound,
        "concurrency": concurrency,
        "workers": workers,
        "cpu_count": cpu_count,
        "expected_scaling": expected_scaling,
        "single": single,
        "cluster": cluster,
        "sticky": sticky,
        "scaling": (cluster["throughput_rps"] / single["throughput_rps"]
                    if single["throughput_rps"] else 0.0),
        "router_counters": after["router"]["metrics"]["counters"],
        "shard_2xx": shard_2xx,
        "federated_2xx": merged(after, "serve.responses_2xx"),
        "federated_metrics": after,
    }

def format_cluster(payload: dict) -> str:
    single = payload["single"]
    cluster = payload["cluster"]
    sticky = payload["sticky"]
    bar = SCALING_EFFICIENCY_BAR * payload["expected_scaling"]
    return "\n".join([
        f"Cluster serving, {payload['workers']} workers on "
        f"{payload['cpu_count']} cpu(s) "
        f"(bound {payload['bound']}, concurrency "
        f"{payload['concurrency']})",
        "",
        f"single process: {single['throughput_rps']:.1f} req/s, "
        f"p95 {1000 * single['latency_s']['p95']:.1f}ms",
        f"cluster:        {cluster['throughput_rps']:.1f} req/s, "
        f"p95 {1000 * cluster['latency_s']['p95']:.1f}ms",
        f"scaling {payload['scaling']:.2f}x "
        f"(hardware-aware ideal {payload['expected_scaling']}x, "
        f"bar {bar:.2f}x)",
        "",
        f"sticky phase ({sticky['requests']} requests over "
        f"{sticky['unique_nests']} fresh nests, 50% duplicates):",
        f"  engine compute calls {sticky['engine_optimize_calls']} "
        f"({100 * sticky['compute_per_request']:.0f}% of requests), "
        f"router L2 hits {sticky['l2_hits']}",
        f"  merged-compute rate "
        f"{100 * sticky['merged_compute_rate']:.0f}% of duplicates "
        f"(bar {100 * MERGED_COMPUTE_BAR:.0f}%)",
        f"  on-shard reuse rate {100 * sticky['sticky_hit_rate']:.0f}%",
        f"  per-shard 2xx {payload['shard_2xx']} "
        f"(federated total {payload['federated_2xx']})",
    ])

def write_results(payload: dict, results_dir: pathlib.Path) -> None:
    results_dir.mkdir(exist_ok=True)
    (results_dir / "cluster_throughput.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    (results_dir / "cluster_throughput.txt").write_text(
        format_cluster(payload) + "\n")

def _acceptance(payload: dict) -> list[str]:
    problems = []
    for phase in ("single", "cluster", "sticky"):
        if payload[phase]["rate_2xx"] < 1.0:
            problems.append(
                f"{phase} phase 2xx rate {payload[phase]['rate_2xx']}")
    bar = SCALING_EFFICIENCY_BAR * payload["expected_scaling"]
    if payload["scaling"] < bar:
        problems.append(
            f"scaling {payload['scaling']:.2f}x below the hardware-aware "
            f"bar {bar:.2f}x ({payload['workers']} workers, "
            f"{payload['cpu_count']} cpus)")
    if payload["sticky"]["merged_compute_rate"] < MERGED_COMPUTE_BAR:
        problems.append(
            f"sticky merged-compute rate "
            f"{payload['sticky']['merged_compute_rate']:.2f} below "
            f"{MERGED_COMPUTE_BAR} -- duplicate requests are recomputing "
            f"instead of hitting the L2 / warm shards")
    if len([count for count in payload["shard_2xx"].values()
            if count > 0]) < min(2, payload["workers"]):
        problems.append(f"traffic did not spread: {payload['shard_2xx']}")
    return problems

# -- pytest mode --------------------------------------------------------------

def test_cluster_throughput(results_dir):
    payload = run_cluster_benchmark(quick=True)
    write_results(payload, results_dir)
    print("\n" + format_cluster(payload))
    assert not _acceptance(payload), _acceptance(payload)

# -- script mode --------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (CI smoke)")
    parser.add_argument("--workers", type=int, default=2,
                        help="cluster worker processes (default 2)")
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--passes", type=int, default=4)
    parser.add_argument("--bound", type=int, default=4)
    parser.add_argument("--results-dir", default=str(_REPO / "results"))
    args = parser.parse_args(argv)

    payload = run_cluster_benchmark(workers=args.workers,
                                    concurrency=args.concurrency,
                                    passes=args.passes, bound=args.bound,
                                    quick=args.quick)
    write_results(payload, pathlib.Path(args.results_dir))
    print(format_cluster(payload))
    problems = _acceptance(payload)
    print(f"\nacceptance: {'PASS' if not problems else 'FAIL'}")
    for problem in problems:
        print(f"  {problem}")
    return 0 if not problems else 1

if __name__ == "__main__":
    sys.exit(main())
