"""Cluster vs single-process serving: scaling, sticky reuse, federation.

Measures the claims of docs/CLUSTER.md over real processes and sockets:

* **scaling** -- the same warm sweep over the Table 2 kernels against a
  single-process server and against ``--workers N`` shards behind the
  router.  The acceptance bar is hardware-aware: perfect scaling is
  ``min(workers, cpu_count)`` (worker processes cannot beat physical
  cores -- on the 1-core CI container the honest bar is "the router hop
  does not halve throughput", while on a 4-core box 4 workers must
  deliver at least ~2x the single process);
* **sticky reuse** -- a duplicate-heavy workload (50% repeated nests)
  must coalesce on-shard: the consistent-hash routing sends repeats to
  the worker that already computed them, so merged engine compute calls
  stay well below the request count even though the shards share
  nothing;
* **federation** -- the router's merged ``GET /metrics`` must account
  for every 2xx the shards produced.

Runs under pytest (``pytest benchmarks/bench_cluster_throughput.py``)
and standalone::

    python benchmarks/bench_cluster_throughput.py --quick

Both modes write ``results/cluster_throughput.json`` and the formatted
``results/cluster_throughput.txt``; the regression gate tracks the
cluster req/s and the sticky reuse rate against
``benchmarks/baselines/cluster_throughput.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

_REPO = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.cluster import ClusterConfig, ClusterThread
from repro.engine import AnalysisEngine
from repro.kernels import all_kernels
from repro.serve.batcher import BatchConfig
from repro.serve.client import ServeClient, build_workload, run_load
from repro.serve.server import ServeConfig, ServerThread

#: Required fraction of ideal hardware-aware scaling (0.45 leaves room
#: for the router hop and scheduler noise without hiding real losses).
SCALING_EFFICIENCY_BAR = 0.45

#: With 50% duplicates, merged engine compute calls per request must
#: stay below this -- the proof that duplicates stick to warm shards.
COMPUTE_RATIO_BAR = 0.75

def _sweep(passes: int) -> list:
    names = [kernel.name for kernel in all_kernels()]
    return build_workload(passes * len(names), duplicate_fraction=0.0,
                          nests=names * passes)

def run_cluster_benchmark(workers: int = 2, concurrency: int = 8,
                          passes: int = 4, bound: int = 4,
                          quick: bool = False) -> dict:
    if quick:
        concurrency, passes, bound = 4, 2, 3
    kernel_count = len(all_kernels())
    cpu_count = os.cpu_count() or 1
    expected_scaling = max(1, min(workers, cpu_count))

    # Phase 1: the single-process reference, same batch knobs.
    config = ServeConfig(port=0, batch=BatchConfig(deadline_s=0.005,
                                                   max_batch=32, threads=4))
    with ServerThread(config, AnalysisEngine()) as handle:
        run_load("127.0.0.1", handle.port, _sweep(1),
                 concurrency=concurrency, bound=bound)  # warm the engine
        single = run_load("127.0.0.1", handle.port,
                          _sweep(passes),
                          concurrency=concurrency, bound=bound)

    # Phase 2 + 3: the sharded cluster.
    cluster_config = ClusterConfig(workers=workers, port=0,
                                   probe_interval_s=0.25,
                                   worker_deadline_ms=5.0,
                                   worker_batch_max=32)
    with ClusterThread(cluster_config) as handle:
        probe = ServeClient(port=handle.port)
        run_load("127.0.0.1", handle.port, _sweep(1),
                 concurrency=concurrency, bound=bound)  # warm every shard
        cluster = run_load("127.0.0.1", handle.port,
                           _sweep(passes),
                           concurrency=concurrency, bound=bound)

        # Sticky phase: 50% duplicate nests, fresh counters read around it.
        _, before = probe.metrics()
        sticky_load = build_workload(2 * kernel_count,
                                     duplicate_fraction=0.5)
        sticky = run_load("127.0.0.1", handle.port, sticky_load,
                          concurrency=concurrency, bound=bound)
        _, after = probe.metrics()
        probe.close()

    def merged(doc: dict, counter: str) -> int:
        return doc["metrics"]["counters"].get(counter, 0)

    sticky_requests = len(sticky_load)
    compute_delta = (merged(after, "engine.optimize")
                     - merged(before, "engine.optimize"))
    reuse_delta = ((merged(after, "serve.coalesced")
                    + merged(after, "serve.cache.hit"))
                   - (merged(before, "serve.coalesced")
                      + merged(before, "serve.cache.hit")))
    sticky["engine_optimize_calls"] = compute_delta
    sticky["compute_per_request"] = compute_delta / sticky_requests
    sticky["sticky_hit_rate"] = max(0.0, reuse_delta / sticky_requests)

    shard_2xx = {slot: doc["metrics"]["counters"]
                 .get("serve.responses_2xx", 0)
                 for slot, doc in after["shards"].items()}
    return {
        "kernels": kernel_count,
        "bound": bound,
        "concurrency": concurrency,
        "workers": workers,
        "cpu_count": cpu_count,
        "expected_scaling": expected_scaling,
        "single": single,
        "cluster": cluster,
        "sticky": sticky,
        "scaling": (cluster["throughput_rps"] / single["throughput_rps"]
                    if single["throughput_rps"] else 0.0),
        "router_counters": after["router"]["metrics"]["counters"],
        "shard_2xx": shard_2xx,
        "federated_2xx": merged(after, "serve.responses_2xx"),
        "federated_metrics": after,
    }

def format_cluster(payload: dict) -> str:
    single = payload["single"]
    cluster = payload["cluster"]
    sticky = payload["sticky"]
    bar = SCALING_EFFICIENCY_BAR * payload["expected_scaling"]
    return "\n".join([
        f"Cluster serving, {payload['workers']} workers on "
        f"{payload['cpu_count']} cpu(s) "
        f"(bound {payload['bound']}, concurrency "
        f"{payload['concurrency']})",
        "",
        f"single process: {single['throughput_rps']:.1f} req/s, "
        f"p95 {1000 * single['latency_s']['p95']:.1f}ms",
        f"cluster:        {cluster['throughput_rps']:.1f} req/s, "
        f"p95 {1000 * cluster['latency_s']['p95']:.1f}ms",
        f"scaling {payload['scaling']:.2f}x "
        f"(hardware-aware ideal {payload['expected_scaling']}x, "
        f"bar {bar:.2f}x)",
        "",
        f"sticky phase ({sticky['requests']} requests, 50% duplicates):",
        f"  merged engine compute calls {sticky['engine_optimize_calls']} "
        f"({100 * sticky['compute_per_request']:.0f}% of requests; "
        f"bar {100 * COMPUTE_RATIO_BAR:.0f}%)",
        f"  on-shard reuse rate {100 * sticky['sticky_hit_rate']:.0f}%",
        f"  per-shard 2xx {payload['shard_2xx']} "
        f"(federated total {payload['federated_2xx']})",
    ])

def write_results(payload: dict, results_dir: pathlib.Path) -> None:
    results_dir.mkdir(exist_ok=True)
    (results_dir / "cluster_throughput.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    (results_dir / "cluster_throughput.txt").write_text(
        format_cluster(payload) + "\n")

def _acceptance(payload: dict) -> list[str]:
    problems = []
    for phase in ("single", "cluster", "sticky"):
        if payload[phase]["rate_2xx"] < 1.0:
            problems.append(
                f"{phase} phase 2xx rate {payload[phase]['rate_2xx']}")
    bar = SCALING_EFFICIENCY_BAR * payload["expected_scaling"]
    if payload["scaling"] < bar:
        problems.append(
            f"scaling {payload['scaling']:.2f}x below the hardware-aware "
            f"bar {bar:.2f}x ({payload['workers']} workers, "
            f"{payload['cpu_count']} cpus)")
    if payload["sticky"]["compute_per_request"] > COMPUTE_RATIO_BAR:
        problems.append(
            f"sticky compute/request "
            f"{payload['sticky']['compute_per_request']:.2f} exceeds "
            f"{COMPUTE_RATIO_BAR} -- duplicates are not landing on warm "
            f"shards")
    if len([count for count in payload["shard_2xx"].values()
            if count > 0]) < min(2, payload["workers"]):
        problems.append(f"traffic did not spread: {payload['shard_2xx']}")
    return problems

# -- pytest mode --------------------------------------------------------------

def test_cluster_throughput(results_dir):
    payload = run_cluster_benchmark(quick=True)
    write_results(payload, results_dir)
    print("\n" + format_cluster(payload))
    assert not _acceptance(payload), _acceptance(payload)

# -- script mode --------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (CI smoke)")
    parser.add_argument("--workers", type=int, default=2,
                        help="cluster worker processes (default 2)")
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--passes", type=int, default=4)
    parser.add_argument("--bound", type=int, default=4)
    parser.add_argument("--results-dir", default=str(_REPO / "results"))
    args = parser.parse_args(argv)

    payload = run_cluster_benchmark(workers=args.workers,
                                    concurrency=args.concurrency,
                                    passes=args.passes, bound=args.bound,
                                    quick=args.quick)
    write_results(payload, pathlib.Path(args.results_dir))
    print(format_cluster(payload))
    problems = _acceptance(payload)
    print(f"\nacceptance: {'PASS' if not problems else 'FAIL'}")
    for problem in problems:
        print(f"  {problem}")
    return 0 if not problems else 1

if __name__ == "__main__":
    sys.exit(main())
