"""Static reuse-profile validation against the executable cache simulator.

The analytic chain under test (docs/REUSE.md): per-reference
reuse-distance histograms from the UGS machinery
(:func:`repro.reuse.profile.reuse_profile`) fed through the binomial
set-conflict model (:func:`repro.machine.cache.miss_probability`) must
predict the *measured* miss ratio of the trace-driven simulator across a
seeded corpus and several cache geometries:

* **error bar** -- per geometry, the mean absolute difference between
  predicted and simulated miss ratio must stay at or below
  ``ERROR_BAR`` (0.05).  Geometries cover direct-mapped, 4-way, and
  8-way set-associative caches.

The regression gate additionally tracks each geometry's mean error
against ``benchmarks/baselines/reuse_profile.json``.

Runs under pytest (``pytest benchmarks/bench_reuse_profile.py``) and as
a standalone script for the CI job::

    python benchmarks/bench_reuse_profile.py --quick

Both modes write ``results/reuse_profile.txt`` and
``results/reuse_profile.json``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time

_REPO = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.corpus import CorpusConfig
from repro.corpus.generator import generate_corpus
from repro.machine.cache import CacheSpec
from repro.machine.presets import dec_alpha
from repro.machine.simulator import simulate
from repro.reuse.profile import reuse_profile

#: Per-geometry mean |predicted - simulated| miss ratio must stay here
#: or below (the ISSUE bar).
ERROR_BAR = 0.05

#: The cache geometries validated: (key, size_words, line_words, assoc).
GEOMETRIES = (
    ("direct_512", 512, 4, 1),
    ("assoc4_1024", 1024, 4, 4),
    ("assoc8_2048", 2048, 4, 8),
)

#: Per-loop trip count by nest depth: deep nests get smaller trips so
#: the simulated iteration space stays tractable while still flushing
#: the cache many times over.
N_BY_DEPTH = {1: 64, 2: 24, 3: 12}

CORPUS_NESTS = 400
CORPUS_NESTS_QUICK = 120

def _extent(n: int) -> int:
    """Array extent for trip ``n``: the smallest odd value >= n + 7.

    Odd extents keep array strides co-prime with the power-of-two set
    counts, so successive rows spread uniformly over the sets -- the
    uniform-mapping assumption the binomial conflict model rests on.
    Even extents (e.g. 32 words = 8 lines) alias whole rows onto a few
    sets and the analytic model under-predicts those pathologies.
    """
    k = n + 7
    return k if k % 2 else k + 1

def _shapes(nest) -> dict[str, tuple[int, ...]]:
    """One square odd-extent shape per array, with as many dimensions as
    the widest reference to it."""
    n = N_BY_DEPTH[nest.depth]
    dims: dict[str, int] = {}
    for statement in nest.body:
        for ref in statement.array_reads() + statement.array_writes():
            dims[ref.array] = max(dims.get(ref.array, 0),
                                  len(ref.subscripts))
    return {array: (_extent(n),) * count for array, count in dims.items()}

def run_reuse_profile_bench(quick: bool = False) -> dict:
    """The full experiment; returns the JSON-ready payload."""
    count = CORPUS_NESTS_QUICK if quick else CORPUS_NESTS
    nests = [nest for nest in generate_corpus(CorpusConfig(routines=count))
             if nest.depth in N_BY_DEPTH]
    base = dec_alpha()

    geometries: dict[str, dict] = {}
    total_error = 0.0
    total_nests = 0
    skipped = 0
    t0 = time.monotonic()
    for key, size, line, assoc in GEOMETRIES:
        machine = dataclasses.replace(base, cache_size_words=size,
                                      cache_line_words=line,
                                      cache_assoc=assoc)
        spec = CacheSpec(size_words=size, line_words=line, assoc=assoc)
        errors: list[tuple[float, str, float, float]] = []
        for nest in nests:
            n = N_BY_DEPTH[nest.depth]
            bindings = {name: n for name in nest.parameters()}
            try:
                result = simulate(nest, machine, bindings, _shapes(nest),
                                  scalar_replace=False)
                profile = reuse_profile(nest, line_size=line, trip=n)
            except Exception:
                skipped += 1
                continue
            if not result.cache_accesses:
                skipped += 1
                continue
            simulated = result.cache_misses / result.cache_accesses
            predicted = profile.miss_ratio(spec)
            errors.append((abs(predicted - simulated), nest.name,
                           predicted, simulated))
        if not errors:
            continue
        mean_error = sum(err for err, *_ in errors) / len(errors)
        worst = sorted(errors, reverse=True)[:5]
        geometries[key] = {
            "size_words": size,
            "line_words": line,
            "assoc": assoc,
            "describe": spec.describe(),
            "nests": len(errors),
            "mean_abs_error": mean_error,
            "max_abs_error": worst[0][0],
            "mean_predicted": sum(p for _, _, p, _ in errors) / len(errors),
            "mean_simulated": sum(s for _, _, _, s in errors) / len(errors),
            "worst": [{"nest": name, "error": err, "predicted": pred,
                       "simulated": sim}
                      for err, name, pred, sim in worst],
        }
        total_error += mean_error * len(errors)
        total_nests += len(errors)
    return {
        "quick": quick,
        "corpus_nests": len(nests),
        "skipped": skipped,
        "wall_s": time.monotonic() - t0,
        "error_bar": ERROR_BAR,
        "geometries": geometries,
        "overall_mean_abs_error": (total_error / total_nests
                                   if total_nests else 1.0),
    }

def acceptance(payload: dict) -> tuple[bool, list[str]]:
    """The hard bars: every geometry present and under the error bar."""
    problems = []
    geometries = payload["geometries"]
    for key, *_ in GEOMETRIES:
        doc = geometries.get(key)
        if doc is None:
            problems.append(f"geometry {key} produced no comparisons")
            continue
        if doc["mean_abs_error"] > ERROR_BAR:
            problems.append(
                f"{key}: mean |predicted - simulated| miss ratio "
                f"{doc['mean_abs_error']:.4f} above the "
                f"{ERROR_BAR:.2f} bar")
    if payload["skipped"] > payload["corpus_nests"]:
        problems.append(
            f"skipped {payload['skipped']} nest-geometry pairs out of "
            f"{payload['corpus_nests']} nests x {len(GEOMETRIES)}")
    return not problems, problems

def format_reuse_profile(payload: dict) -> str:
    lines = [
        f"Reuse-profile miss-ratio validation "
        f"({payload['corpus_nests']} corpus nests, "
        f"{payload['wall_s']:.1f}s, bar {ERROR_BAR:.2f})",
        "",
        f"{'geometry':<24s} {'nests':>6s} {'mean err':>9s} "
        f"{'max err':>8s} {'pred':>7s} {'sim':>7s}",
    ]
    for key, doc in payload["geometries"].items():
        lines.append(
            f"{doc['describe']:<24s} {doc['nests']:>6d} "
            f"{doc['mean_abs_error']:>9.4f} {doc['max_abs_error']:>8.4f} "
            f"{doc['mean_predicted']:>7.4f} {doc['mean_simulated']:>7.4f}")
    lines.append("")
    lines.append(f"overall mean |error|: "
                 f"{payload['overall_mean_abs_error']:.4f}")
    for key, doc in payload["geometries"].items():
        top = doc["worst"][0]
        lines.append(f"  worst on {key}: {top['nest']} "
                     f"(pred {top['predicted']:.3f}, "
                     f"sim {top['simulated']:.3f})")
    return "\n".join(lines)

def write_results(payload: dict, results_dir: pathlib.Path) -> None:
    results_dir.mkdir(exist_ok=True)
    (results_dir / "reuse_profile.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    (results_dir / "reuse_profile.txt").write_text(
        format_reuse_profile(payload) + "\n")

# -- pytest mode --------------------------------------------------------------

def test_reuse_profile_gates(results_dir):
    payload = run_reuse_profile_bench(quick=True)
    write_results(payload, results_dir)
    print("\n" + format_reuse_profile(payload))
    ok, problems = acceptance(payload)
    assert ok, problems

# -- script mode --------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus slice (CI smoke)")
    parser.add_argument("--results-dir", default=str(_REPO / "results"))
    args = parser.parse_args(argv)

    payload = run_reuse_profile_bench(quick=args.quick)
    write_results(payload, pathlib.Path(args.results_dir))
    print(format_reuse_profile(payload))
    ok, problems = acceptance(payload)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 0 if ok else 1

if __name__ == "__main__":
    sys.exit(main())
