"""Engine throughput: cold vs warm cache, worker fan-out, nests/sec.

The engine's claims, measured on the 19 Table 2 kernels:

* **parity** -- ``optimize_many`` returns byte-identical unroll vectors to
  sequential :func:`repro.unroll.optimize.choose_unroll`;
* **warm cache** -- a rerun on the same engine answers >= 90% of table
  queries from the memo and finishes measurably faster;
* **fan-out** -- 1/2/4 workers, reported as nests/sec.

Runs under pytest (``pytest benchmarks/bench_engine_throughput.py``) and
as a standalone script for the CI smoke job::

    python benchmarks/bench_engine_throughput.py --quick

Both modes write ``results/engine_throughput.txt`` and the metrics JSON
``results/engine_throughput.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_REPO = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro import obs
from repro.engine import AnalysisEngine
from repro.engine.metrics import delta
from repro.kernels import all_kernels
from repro.machine.presets import dec_alpha
from repro.unroll.optimize import choose_unroll

def _timed_batch(engine: AnalysisEngine, nests, machine, bound: int,
                 workers: int | None):
    """One optimize_many run plus the cache-counter delta it contributed."""
    before = dict(engine.metrics.counters)
    report = engine.optimize_many(nests, machine, workers=workers,
                                  bound=bound)
    counters = delta(before, engine.metrics.counters)
    hits = counters.get("cache.tables.hit", 0)
    misses = counters.get("cache.tables.miss", 0)
    probes = hits + misses
    return report, {
        "wall_time_s": report.wall_time_s,
        "nests_per_sec": report.nests_per_sec,
        "failures": len(report.failures),
        "tables_hit_rate": hits / probes if probes else 0.0,
        "counters": counters,
    }

def run_throughput(bound: int = 4, workers_list=(1, 2, 4),
                   quick: bool = False) -> dict:
    """The full experiment; returns the JSON-ready payload."""
    if quick:
        bound = 3
        workers_list = (1, 2)
    kernels = all_kernels()
    nests = [kernel.nest for kernel in kernels]
    machine = dec_alpha()

    t0 = time.monotonic()
    sequential = [choose_unroll(nest, machine, bound=bound).unroll
                  for nest in nests]
    seq_time = time.monotonic() - t0

    engine = AnalysisEngine()
    cold_report, cold = _timed_batch(engine, nests, machine, bound,
                                     workers=1)
    warm_report, warm = _timed_batch(engine, nests, machine, bound,
                                     workers=1)

    cold_vectors = [item.result.unroll for item in cold_report.items]
    warm_vectors = [item.result.unroll for item in warm_report.items]
    mismatches = [kernels[i].name for i, (a, b) in
                  enumerate(zip(sequential, cold_vectors)) if a != b]

    fanout = []
    for workers in workers_list:
        fresh = AnalysisEngine()
        _, stats = _timed_batch(fresh, nests, machine, bound,
                                workers=workers)
        fanout.append({"workers": workers, **stats})

    return {
        "bound": bound,
        "kernels": len(nests),
        "sequential": {"wall_time_s": seq_time,
                       "nests_per_sec": len(nests) / seq_time
                       if seq_time else 0.0},
        "cold": cold,
        "warm": warm,
        "fanout": fanout,
        "parity": {"matches": not mismatches and
                              cold_vectors == warm_vectors,
                   "mismatches": mismatches},
        "metrics": engine.metrics.snapshot(),
    }

def format_throughput(payload: dict) -> str:
    lines = [f"Engine throughput over the {payload['kernels']} Table 2 "
             f"kernels (bound {payload['bound']})",
             f"{'configuration':<22s} {'wall':>8s} {'nests/s':>8s} "
             f"{'tables hit rate':>16s}"]

    def row(label, stats, rate=None):
        rate_text = f"{100 * rate:>14.0f}%" if rate is not None else \
            f"{'-':>15s}"
        lines.append(f"{label:<22s} {stats['wall_time_s']:>7.3f}s "
                     f"{stats['nests_per_sec']:>8.1f} {rate_text}")

    row("sequential (no cache)", payload["sequential"])
    row("engine, cold", payload["cold"], payload["cold"]["tables_hit_rate"])
    row("engine, warm", payload["warm"], payload["warm"]["tables_hit_rate"])
    for stats in payload["fanout"]:
        row(f"engine, {stats['workers']} worker(s)", stats,
            stats["tables_hit_rate"])
    lines.append("")
    lines.append(f"parity with choose_unroll: {payload['parity']['matches']}")
    speedup = (payload["cold"]["wall_time_s"] /
               payload["warm"]["wall_time_s"]
               if payload["warm"]["wall_time_s"] else float("inf"))
    lines.append(f"warm speedup over cold: {speedup:.1f}x")
    return "\n".join(lines)

def write_results(payload: dict, results_dir: pathlib.Path) -> None:
    results_dir.mkdir(exist_ok=True)
    (results_dir / "engine_throughput.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    (results_dir / "engine_throughput.txt").write_text(
        format_throughput(payload) + "\n")

# -- pytest mode --------------------------------------------------------------

def test_engine_throughput(results_dir):
    payload = run_throughput(quick=True)
    write_results(payload, results_dir)
    print("\n" + format_throughput(payload))
    assert payload["parity"]["matches"], payload["parity"]["mismatches"]
    assert payload["warm"]["tables_hit_rate"] >= 0.90
    assert (payload["warm"]["wall_time_s"] <
            payload["cold"]["wall_time_s"])
    assert payload["cold"]["failures"] == 0

# -- script mode --------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller bound and worker sweep (CI smoke)")
    parser.add_argument("--bound", type=int, default=4)
    parser.add_argument("--results-dir", default=str(_REPO / "results"))
    parser.add_argument("--emit-trace", action="store_true",
                        help="record repro.obs spans and write the Chrome "
                             "trace next to the results JSON")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the engine stages and write the "
                             "top-N summary next to the results JSON")
    args = parser.parse_args(argv)

    results_dir = pathlib.Path(args.results_dir)
    if args.emit_trace:
        obs.configure(enabled=True)
    if args.profile:
        obs.set_profiler(obs.Profiler(enabled=True))

    with obs.span("bench.engine_throughput", quick=args.quick):
        payload = run_throughput(bound=args.bound, quick=args.quick)
    write_results(payload, results_dir)

    if args.emit_trace:
        trace_path = results_dir / "engine_throughput.trace.json"
        obs.get_tracer().write_chrome(trace_path)
        print(f"[trace] {trace_path} "
              f"({len(obs.get_tracer())} spans)")
    if args.profile:
        profile_path = obs.get_profiler().write(
            results_dir / "engine_throughput.profile.json")
        print(f"[profile] {profile_path}")
    print(format_throughput(payload))
    ok = (payload["parity"]["matches"]
          and payload["warm"]["tables_hit_rate"] >= 0.90
          and payload["warm"]["wall_time_s"] < payload["cold"]["wall_time_s"])
    print(f"\nacceptance: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1

if __name__ == "__main__":
    sys.exit(main())
