"""Cold-path analysis throughput: optimized vs seed ``choose_unroll``.

The cold path -- dependence graph, locality scores, table construction and
the balance search, with every cache empty -- is what a compiler pays on
first sight of a nest.  This benchmark times it over the 19 Table 2
kernels twice:

* **fast** -- the optimized pipeline (summed-area tables, shared stream
  chains, Bareiss elimination, memoized reuse predicates, pruned search);
* **seed** -- the retained original algorithms
  (``repro.fastpath.seed_algorithms()`` with ``fast=False, prune=False``),
  the faithful pre-optimization reference.

Both passes must return identical unroll vectors and breakdowns for every
kernel (the exactness claim).  The acceptance bar asserts the fast pass is
at least ``SPEEDUP_BAR`` times faster than the *frozen* seed reference
recorded in ``benchmarks/baselines/cold_analysis.json`` (refreshed only by
``make bench-baseline``); the live seed measurement feeds the regression
gate and the next baseline refresh.  Per-stage p95 latencies come from a
cold :class:`repro.engine.AnalysisEngine` pass over the same corpus.

Runs under pytest (``pytest benchmarks/bench_cold_analysis.py``) and as a
standalone script for the CI smoke job::

    python benchmarks/bench_cold_analysis.py --quick

Both modes write ``results/cold_analysis.txt`` and the metrics JSON
``results/cold_analysis.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_REPO = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.engine import AnalysisEngine
from repro.fastpath import seed_algorithms
from repro.kernels import all_kernels
from repro.machine.presets import dec_alpha
from repro.unroll.optimize import choose_unroll

BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "baselines" / \
    "cold_analysis.json"

#: Required fast/seed-reference throughput ratio (the PR's acceptance bar).
SPEEDUP_BAR = 2.0

#: Engine stages whose p95 wall time the regression gate tracks.
TRACKED_STAGES = ("dependence_graph", "locality", "build_tables", "search")

def _run_corpus(nests, machine, bound: int, seed_mode: bool):
    """One full cold pass over the corpus; returns (results, wall time)."""
    t0 = time.monotonic()
    if seed_mode:
        with seed_algorithms():
            results = [choose_unroll(nest, machine, bound=bound,
                                     prune=False, fast=False)
                       for nest in nests]
    else:
        results = [choose_unroll(nest, machine, bound=bound)
                   for nest in nests]
    return results, time.monotonic() - t0

def _best_of(nests, machine, bound: int, repetitions: int, seed_mode: bool):
    """Best wall time over ``repetitions`` passes (damps runner noise)."""
    best_results, best_time = _run_corpus(nests, machine, bound, seed_mode)
    for _ in range(repetitions - 1):
        results, wall = _run_corpus(nests, machine, bound, seed_mode)
        if wall < best_time:
            best_results, best_time = results, wall
    return best_results, best_time

def _stage_p95s(nests, machine, bound: int) -> dict:
    """Per-stage p95 seconds from one cold engine pass over the corpus."""
    engine = AnalysisEngine()
    for nest in nests:
        engine.optimize(nest, machine, bound=bound)
    stages = engine.metrics.snapshot()["stages"]
    return {name: stages[f"stage.{name}"]["p95_s"]
            for name in TRACKED_STAGES if f"stage.{name}" in stages}

def frozen_seed_reference(bound: int) -> float | None:
    """The committed seed-path nests/sec for this bound, or None."""
    try:
        doc = json.loads(BASELINE_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    metrics = doc.get("metrics", {})
    if metrics.get("bound") != bound:
        return None  # measured under a different search bound
    return metrics.get("seed_nests_per_sec")

def run_cold_analysis(bound: int = 4, repetitions: int = 5,
                      quick: bool = False) -> dict:
    """The full experiment; returns the JSON-ready payload.

    Unlike the other benchmarks, ``quick`` keeps the full search bound --
    the whole corpus analyzes in well under a second, and the speedup bar
    is calibrated at the default bound (smaller boxes shrink the
    summed-area advantage, so measuring them would gate a different
    claim).  Quick mode only trims repetitions.
    """
    if quick:
        repetitions = 3
    kernels = all_kernels()
    nests = [kernel.nest for kernel in kernels]
    machine = dec_alpha()

    # Warm-up: imports, bytecode, the interpreter's small-int caches.
    _run_corpus(nests, machine, min(bound, 2), seed_mode=False)

    fast_results, fast_time = _best_of(nests, machine, bound, repetitions,
                                       seed_mode=False)
    seed_results, seed_time = _best_of(nests, machine, bound, repetitions,
                                       seed_mode=True)

    mismatches = [kernels[i].name
                  for i, (a, b) in enumerate(zip(fast_results, seed_results))
                  if a.unroll != b.unroll or a.breakdown != b.breakdown]

    count = len(nests)
    fast_nps = count / fast_time if fast_time else 0.0
    seed_nps = count / seed_time if seed_time else 0.0
    reference = frozen_seed_reference(bound)
    return {
        "bound": bound,
        "kernels": count,
        "repetitions": repetitions,
        "fast": {"wall_time_s": fast_time, "nests_per_sec": fast_nps},
        "seed": {"wall_time_s": seed_time, "nests_per_sec": seed_nps},
        "speedup_vs_seed": fast_nps / seed_nps if seed_nps else 0.0,
        "seed_reference_nests_per_sec": reference,
        "speedup_vs_reference": (fast_nps / reference
                                 if reference else None),
        "parity": {"matches": not mismatches, "mismatches": mismatches},
        "stage_p95_s": _stage_p95s(nests, machine, bound),
    }

def acceptance(payload: dict) -> tuple[bool, list[str]]:
    """The hard bars: exact parity, and >= SPEEDUP_BAR x over the frozen
    seed reference (skipped, with a note, before a baseline exists)."""
    problems = []
    if not payload["parity"]["matches"]:
        problems.append(
            f"parity mismatches: {payload['parity']['mismatches']}")
    speedup = payload["speedup_vs_reference"]
    if speedup is None:
        print("[cold_analysis] no frozen seed reference for bound "
              f"{payload['bound']}; speedup bar not enforced "
              "(run `make bench-baseline` to record one)")
    elif speedup < SPEEDUP_BAR:
        problems.append(
            f"speedup {speedup:.2f}x below the {SPEEDUP_BAR:.1f}x bar "
            f"(fast {payload['fast']['nests_per_sec']:.1f} nests/s vs "
            f"frozen seed {payload['seed_reference_nests_per_sec']:.1f})")
    return not problems, problems

def format_cold_analysis(payload: dict) -> str:
    lines = [f"Cold-path analysis over the {payload['kernels']} Table 2 "
             f"kernels (bound {payload['bound']}, best of "
             f"{payload['repetitions']})",
             f"{'pipeline':<18s} {'wall':>8s} {'nests/s':>8s}"]
    for label, key in (("fast (optimized)", "fast"), ("seed (original)",
                                                      "seed")):
        stats = payload[key]
        lines.append(f"{label:<18s} {stats['wall_time_s']:>7.3f}s "
                     f"{stats['nests_per_sec']:>8.1f}")
    lines.append("")
    lines.append(f"live speedup vs seed: {payload['speedup_vs_seed']:.2f}x")
    if payload["speedup_vs_reference"] is not None:
        lines.append(f"speedup vs frozen reference "
                     f"({payload['seed_reference_nests_per_sec']:.1f} "
                     f"nests/s): {payload['speedup_vs_reference']:.2f}x "
                     f"(bar {SPEEDUP_BAR:.1f}x)")
    lines.append(f"parity (unroll + breakdown): "
                 f"{payload['parity']['matches']}")
    lines.append("")
    lines.append("engine stage p95:")
    for name, p95 in sorted(payload["stage_p95_s"].items()):
        lines.append(f"  {name:<18s} {1000 * p95:>8.2f} ms")
    return "\n".join(lines)

def write_results(payload: dict, results_dir: pathlib.Path) -> None:
    results_dir.mkdir(exist_ok=True)
    (results_dir / "cold_analysis.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    (results_dir / "cold_analysis.txt").write_text(
        format_cold_analysis(payload) + "\n")

# -- pytest mode --------------------------------------------------------------

def test_cold_analysis(results_dir):
    payload = run_cold_analysis(quick=True)
    write_results(payload, results_dir)
    print("\n" + format_cold_analysis(payload))
    ok, problems = acceptance(payload)
    assert ok, problems

# -- script mode --------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller search bound (CI smoke)")
    parser.add_argument("--bound", type=int, default=4)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--results-dir", default=str(_REPO / "results"))
    args = parser.parse_args(argv)

    payload = run_cold_analysis(bound=args.bound,
                                repetitions=args.repetitions,
                                quick=args.quick)
    write_results(payload, pathlib.Path(args.results_dir))
    print(format_cold_analysis(payload))
    ok, problems = acceptance(payload)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    print(f"\nacceptance: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1

if __name__ == "__main__":
    sys.exit(main())
