"""Ablation: the software-prefetch pass (section 6) on top of the chosen
unroll vectors -- the architecture direction the paper says its model is
ready for."""

import pytest

from conftest import write_artifact
from repro.experiments.ablation import run_software_prefetch
from repro.kernels.suite import cond7, dmxpy0, dmxpy1, jacobi, mmjki, sor

KERNELS = [jacobi(), cond7(), dmxpy0(), dmxpy1(), sor(), mmjki()]

@pytest.fixture(scope="module")
def rows():
    return run_software_prefetch(kernels=KERNELS, bound=6)

def _format(rows):
    lines = ["Ablation: software prefetching on the DEC Alpha model",
             f"{'Loop':<10s} {'unroll':<12s} {'plain':>6s} {'+sw pf':>6s} "
             f"{'stalls':>7s} {'stalls+pf':>9s} {'pf ops':>7s}"]
    for r in rows:
        lines.append(
            f"{r.name:<10s} {str(r.unroll):<12s} {r.normalized_plain:>6.2f} "
            f"{r.normalized_prefetched:>6.2f} {r.stall_misses_plain:>7d} "
            f"{r.stall_misses_prefetched:>9d} {r.prefetch_ops:>7d}")
    return "\n".join(lines)

def test_regenerate(rows, results_dir):
    write_artifact(results_dir, "ablation_software_prefetch.txt",
                   _format(rows))

def test_prefetch_never_slower(rows):
    for row in rows:
        assert row.normalized_prefetched <= row.normalized_plain + 0.02, \
            row.name

def test_prefetch_reduces_stalls_overall(rows):
    total_plain = sum(r.stall_misses_plain for r in rows)
    total_fetched = sum(r.stall_misses_prefetched for r in rows)
    assert total_fetched < total_plain

def test_substantial_wins_exist(rows):
    wins = [r for r in rows
            if r.normalized_prefetched < r.normalized_plain - 0.1]
    assert len(wins) >= 2, [(r.name, r.normalized_plain,
                             r.normalized_prefetched) for r in rows]

def test_bench_prefetched_simulation(benchmark):
    from repro.kernels.suite import jacobi as jac
    from repro.machine import dec_alpha
    from repro.machine.simulator import simulate

    kernel = jac(96)
    benchmark.pedantic(
        lambda: simulate(kernel.nest, dec_alpha(), kernel.bindings,
                         kernel.shapes, unroll=(4, 0),
                         software_prefetch=True),
        rounds=2, iterations=1)
