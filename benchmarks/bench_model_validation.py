"""Validation bench: the balance model must rank unroll vectors like the
simulated machine does (positive rank correlation, low regret)."""

import pytest

from conftest import write_artifact
from repro.experiments.validation import format_validation, run_validation
from repro.kernels.suite import (
    cond7,
    cond9,
    dmxpy0,
    dmxpy1,
    gmtry3,
    jacobi,
    mmjik,
    shal,
    sor,
    vpenta7,
)
from repro.machine import dec_alpha

KERNELS = [jacobi(), cond7(), cond9(), dmxpy0(), dmxpy1(), gmtry3(),
           vpenta7(), sor(), shal(), mmjik(24)]

@pytest.fixture(scope="module")
def rows():
    return run_validation(dec_alpha(), bound=4, kernels=KERNELS)

def test_regenerate(rows, results_dir):
    write_artifact(results_dir, "model_validation.txt",
                   format_validation(rows))

def test_mostly_positive_correlation(rows):
    positive = [r for r in rows if r.spearman > 0.3]
    assert len(positive) >= 7, [(r.name, r.spearman) for r in rows]

def test_low_regret(rows):
    """The model's pick lands within 30% of the simulated optimum on
    almost every kernel."""
    near = [r for r in rows if r.regret <= 1.3]
    assert len(near) >= 8, [(r.name, r.regret) for r in rows]

def test_mean_regret_small(rows):
    mean_regret = sum(r.regret for r in rows) / len(rows)
    assert mean_regret <= 1.25

def test_bench_one_validation(benchmark):
    benchmark.pedantic(
        lambda: run_validation(dec_alpha(), bound=2, kernels=[dmxpy1(64)]),
        rounds=2, iterations=1)
