"""Shared helpers for the benchmark harness.

Each bench module regenerates one table or figure of the paper, asserts its
qualitative shape, writes the formatted artifact under ``results/``, and
times the core computational step with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR

def write_artifact(path: pathlib.Path, name: str, text: str) -> None:
    target = path / name
    target.write_text(text + "\n")
    print(f"\n[artifact] {target}\n{text}")
