"""Serving throughput: coalescing hit rate, latency percentiles, req/s.

The serving layer's claims, measured over a real loopback socket against
the 19 Table 2 kernels:

* **coalescing** -- a workload where 50% of requests duplicate an earlier
  nest completes with engine compute calls (the ``engine.optimize``
  counter) at most 60% of the request count: duplicates ride the
  micro-batcher's in-flight coalescing or the serve-side result cache
  instead of recomputing;
* **sustained throughput** -- a warm multiple-pass sweep over all 19
  kernels, reported as requests/sec with exact client-side latency
  percentiles (and the server's own histogram-derived p50/p95/p99 from
  ``GET /metrics``);
* **wire shoot-out** -- the same serialized-source sweep (nests shipped
  as full specs, the external-client shape -- no server-side kernel
  lookup) over the v1 JSON transport and the v2 binary-frame transport
  at equal concurrency.  The frame path (precomputed structural key in
  the header + the server's encoded-response cache, docs/WIRE.md) must
  at least halve the warm JSON p50.

Runs under pytest (``pytest benchmarks/bench_serve_throughput.py``) and
as a standalone script::

    python benchmarks/bench_serve_throughput.py --quick

Both modes write ``results/serve_throughput.json`` and the formatted
``results/serve_throughput.txt``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

_REPO = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro import obs
from repro.engine import AnalysisEngine
from repro.kernels import all_kernels
from repro.serve.batcher import BatchConfig
from repro.serve.client import ServeClient, build_workload, run_load
from repro.serve.server import ServeConfig, ServerThread

#: The acceptance bar: with 50% duplicates, compute calls per request.
COMPUTE_RATIO_BAR = 0.60

#: Warm binary-frame p50 must be at most this fraction of the warm JSON
#: p50 at equal concurrency (the docs/WIRE.md claim).
WIRE_P50_RATIO_BAR = 0.50

def _wire_workload(passes: int) -> list:
    """Every Table 2 kernel as a *serialized* nest spec, ``passes`` times.

    Serialized specs are what an external client actually ships (the
    server cannot shortcut them through the kernel-name lookup), so the
    JSON-vs-binary delta is pure wire, parse, and cache-path cost.
    """
    from repro.api import serialize_nest

    specs = [serialize_nest(kernel.nest) for kernel in all_kernels()]
    return build_workload(passes * len(specs), duplicate_fraction=0.0,
                          nests=specs * passes)

def _engine_optimize_calls(client: ServeClient) -> int:
    _, doc = client.metrics()
    return doc["metrics"]["counters"].get("engine.optimize", 0)

def run_serve_benchmark(concurrency: int = 8, passes: int = 5,
                        bound: int = 4, quick: bool = False) -> dict:
    """Boot a fresh server on a loopback socket and measure both phases."""
    if quick:
        concurrency, passes, bound = 4, 2, 3
    kernel_count = len(all_kernels())
    config = ServeConfig(port=0, batch=BatchConfig(deadline_s=0.005,
                                                   max_batch=32,
                                                   threads=4))
    with ServerThread(config, AnalysisEngine()) as handle:
        probe = ServeClient(port=handle.port)

        # Phase 1: every kernel exactly twice -> 50% duplicate nests.
        workload = build_workload(2 * kernel_count, duplicate_fraction=0.5)
        assert len({nest for _, nest in workload}) == kernel_count
        coalescing = run_load("127.0.0.1", handle.port, workload,
                              concurrency=concurrency, bound=bound)
        compute_calls = _engine_optimize_calls(probe)
        coalescing["engine_optimize_calls"] = compute_calls
        coalescing["compute_per_request"] = \
            compute_calls / len(workload)
        counters = probe.metrics()[1]["metrics"]["counters"]
        coalescing["coalesced"] = counters.get("serve.coalesced", 0)
        coalescing["result_cache_hits"] = counters.get("serve.cache.hit", 0)
        requests = counters.get("serve.requests", 1)
        coalescing["coalescing_hit_rate"] = \
            (coalescing["coalesced"] + coalescing["result_cache_hits"]) \
            / requests

        # Phase 2: sustained warm throughput, `passes` sweeps of all 19.
        sweep = build_workload(passes * kernel_count, duplicate_fraction=0.0,
                               nests=[k.name for k in all_kernels()] * passes)
        throughput = run_load("127.0.0.1", handle.port, sweep,
                              concurrency=concurrency, bound=bound)

        # Phase 3: the wire shoot-out.  One unmeasured pass per
        # transport warms each lane (result cache, frame cache, client
        # encode cache), then the measured sweeps run fully warm so the
        # comparison is wire cost, not compute.  Both transports run at
        # the same concurrency -- pinned to 1, because the warm wire
        # cost is sub-millisecond and CPython's thread-switch latency
        # (~5ms default interval) swamps it the moment client threads
        # outnumber cores.
        wire_concurrency = 1
        run_load("127.0.0.1", handle.port, _wire_workload(1),
                 concurrency=wire_concurrency, bound=bound, transport="json")
        run_load("127.0.0.1", handle.port, _wire_workload(1),
                 concurrency=wire_concurrency, bound=bound,
                 transport="binary")
        wire_json = run_load("127.0.0.1", handle.port, _wire_workload(passes),
                             concurrency=wire_concurrency, bound=bound,
                             transport="json")
        wire_binary = run_load("127.0.0.1", handle.port,
                               _wire_workload(passes),
                               concurrency=wire_concurrency, bound=bound,
                               transport="binary")
        json_p50 = wire_json["latency_s"]["p50"]
        binary_p50 = wire_binary["latency_s"]["p50"]
        wire = {
            "json": wire_json,
            "binary": wire_binary,
            "concurrency": wire_concurrency,
            "p50_ratio": (binary_p50 / json_p50 if json_p50 else 0.0),
            "rps_speedup": (wire_binary["throughput_rps"]
                            / wire_json["throughput_rps"]
                            if wire_json["throughput_rps"] else 0.0),
        }

        _, metrics_doc = probe.metrics()
        probe.close()

    server_stages = metrics_doc["metrics"]["stages"]
    optimize_stage = server_stages.get("stage.optimize", {})
    return {
        "kernels": kernel_count,
        "bound": bound,
        "concurrency": concurrency,
        "coalescing": coalescing,
        "throughput": throughput,
        "wire": wire,
        "server_stage_optimize": {
            key: optimize_stage.get(key, 0.0)
            for key in ("count", "mean_s", "p50_s", "p95_s", "p99_s")},
        "server_metrics": metrics_doc,
    }

def format_serve(payload: dict) -> str:
    coal = payload["coalescing"]
    thr = payload["throughput"]
    lines = [
        f"Serving the {payload['kernels']} Table 2 kernels over HTTP "
        f"(bound {payload['bound']}, concurrency {payload['concurrency']})",
        "",
        "coalescing phase (50% duplicate nests):",
        f"  requests {coal['requests']}, engine compute calls "
        f"{coal['engine_optimize_calls']} "
        f"({100 * coal['compute_per_request']:.0f}% of requests; "
        f"bar {100 * COMPUTE_RATIO_BAR:.0f}%)",
        f"  coalesced in flight {coal['coalesced']}, result-cache hits "
        f"{coal['result_cache_hits']} "
        f"(hit rate {100 * coal['coalescing_hit_rate']:.0f}%)",
        f"  2xx rate {100 * coal['rate_2xx']:.1f}%",
        "",
        f"sustained phase ({thr['requests']} warm requests):",
        f"  throughput {thr['throughput_rps']:.1f} req/s, "
        f"2xx rate {100 * thr['rate_2xx']:.1f}%",
        f"  client latency p50 {1000 * thr['latency_s']['p50']:.2f}ms  "
        f"p95 {1000 * thr['latency_s']['p95']:.2f}ms  "
        f"p99 {1000 * thr['latency_s']['p99']:.2f}ms",
        f"  server stage.optimize p50 "
        f"{1000 * payload['server_stage_optimize']['p50_s']:.2f}ms  "
        f"p99 {1000 * payload['server_stage_optimize']['p99_s']:.2f}ms",
        "",
        f"wire shoot-out ({payload['wire']['json']['requests']} serialized"
        f"-source requests per transport):",
        f"  v1 json:   {payload['wire']['json']['throughput_rps']:.1f} "
        f"req/s, p50 "
        f"{1000 * payload['wire']['json']['latency_s']['p50']:.2f}ms",
        f"  v2 binary: {payload['wire']['binary']['throughput_rps']:.1f} "
        f"req/s, p50 "
        f"{1000 * payload['wire']['binary']['latency_s']['p50']:.2f}ms",
        f"  binary/json p50 ratio {payload['wire']['p50_ratio']:.2f} "
        f"(bar <= {WIRE_P50_RATIO_BAR:.2f}), "
        f"rps speedup {payload['wire']['rps_speedup']:.2f}x",
    ]
    return "\n".join(lines)

def write_results(payload: dict, results_dir: pathlib.Path) -> None:
    results_dir.mkdir(exist_ok=True)
    (results_dir / "serve_throughput.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    (results_dir / "serve_throughput.txt").write_text(
        format_serve(payload) + "\n")

def _acceptance(payload: dict) -> list[str]:
    problems = []
    coal = payload["coalescing"]
    if coal["compute_per_request"] > COMPUTE_RATIO_BAR:
        problems.append(
            f"compute/request {coal['compute_per_request']:.2f} exceeds "
            f"{COMPUTE_RATIO_BAR}")
    if coal["rate_2xx"] < 1.0:
        problems.append(f"coalescing phase 2xx rate {coal['rate_2xx']}")
    if payload["throughput"]["rate_2xx"] < 1.0:
        problems.append(
            f"sustained phase 2xx rate {payload['throughput']['rate_2xx']}")
    if payload["throughput"]["throughput_rps"] <= 0:
        problems.append("no sustained throughput measured")
    wire = payload["wire"]
    for transport in ("json", "binary"):
        if wire[transport]["rate_2xx"] < 1.0:
            problems.append(
                f"wire {transport} 2xx rate {wire[transport]['rate_2xx']}")
    if wire["p50_ratio"] > WIRE_P50_RATIO_BAR:
        problems.append(
            f"binary/json p50 ratio {wire['p50_ratio']:.2f} exceeds "
            f"{WIRE_P50_RATIO_BAR} -- the frame transport is not paying "
            f"for itself")
    return problems

# -- pytest mode --------------------------------------------------------------

def test_serve_throughput(results_dir):
    payload = run_serve_benchmark(quick=True)
    write_results(payload, results_dir)
    print("\n" + format_serve(payload))
    assert not _acceptance(payload), _acceptance(payload)

# -- script mode --------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (CI smoke)")
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--passes", type=int, default=5)
    parser.add_argument("--bound", type=int, default=4)
    parser.add_argument("--results-dir", default=str(_REPO / "results"))
    parser.add_argument("--emit-trace", action="store_true",
                        help="record repro.obs spans and write the Chrome "
                             "trace next to the results JSON")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the serve flushes and write the "
                             "top-N summary next to the results JSON")
    args = parser.parse_args(argv)

    results_dir = pathlib.Path(args.results_dir)
    if args.emit_trace:
        obs.configure(enabled=True)
    if args.profile:
        obs.set_profiler(obs.Profiler(enabled=True))

    with obs.span("bench.serve_throughput", quick=args.quick):
        payload = run_serve_benchmark(concurrency=args.concurrency,
                                      passes=args.passes, bound=args.bound,
                                      quick=args.quick)
    write_results(payload, results_dir)

    if args.emit_trace:
        trace_path = results_dir / "serve_throughput.trace.json"
        obs.get_tracer().write_chrome(trace_path)
        print(f"[trace] {trace_path} ({len(obs.get_tracer())} spans)")
    if args.profile:
        profile_path = obs.get_profiler().write(
            results_dir / "serve_throughput.profile.json")
        print(f"[profile] {profile_path}")
    print(format_serve(payload))
    problems = _acceptance(payload)
    print(f"\nacceptance: {'PASS' if not problems else 'FAIL'}")
    for problem in problems:
        print(f"  {problem}")
    return 0 if not problems else 1

if __name__ == "__main__":
    sys.exit(main())
