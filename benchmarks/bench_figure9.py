"""Figure 9: normalized execution time of the 19 loops on the HP PA-RISC
model.

The PA's large, fast cache makes the miss term small: the Cache and
No-Cache models mostly agree (the paper's two bars track each other much
more closely than on the Alpha), and the remaining speedups come from the
issue-balance improvement alone.
"""

import pytest

from conftest import write_artifact
from repro.experiments.figures import evaluate_kernel, format_figure, run_figure
from repro.kernels.suite import vpenta7
from repro.machine import hp_pa_risc

@pytest.fixture(scope="module")
def rows():
    return run_figure(hp_pa_risc(), bound=6)

def test_regenerate_figure9(rows, results_dir):
    write_artifact(results_dir, "figure9.txt",
                   format_figure(rows, "Figure 9: HP PA-RISC (normalized "
                                 "execution time)"))
    assert len(rows) == 19

def test_no_pessimization(rows):
    for row in rows:
        assert row.normalized_cache <= 1.05, row.name

def test_models_mostly_agree_on_pa(rows):
    """With the working sets cached, the cache term barely changes the
    decision: the two configurations track each other."""
    close = [r for r in rows
             if abs(r.normalized_cache - r.normalized_no_cache) <= 0.05]
    assert len(close) >= 15, [(r.name, r.normalized_no_cache,
                               r.normalized_cache) for r in rows]

def test_speedups_still_exist(rows):
    """Balance-driven unrolling still pays on the PA."""
    wins = [r for r in rows if r.normalized_cache <= 0.85]
    assert len(wins) >= 4

def test_bench_one_kernel_evaluation(benchmark):
    kernel = vpenta7(96)
    benchmark.pedantic(lambda: evaluate_kernel(kernel, hp_pa_risc(), bound=4),
                       rounds=2, iterations=1)
