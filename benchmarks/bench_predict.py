"""The learned fast tier's gates: held-out accuracy and latency ratio.

Two acceptance bars for the committed default model (docs/PREDICT.md):

* **accuracy** -- top-1 agreement with the exact engine on a held-out
  corpus slice the model never trained on (seeded routines *after* the
  training range, so the evaluation set is deterministic: accuracy only
  moves when the model, the featurizer, or the corpus generator
  changes).  Bar: ``ACCURACY_BAR`` (0.85).
* **latency** -- the fast tier's per-nest decision time (featurize +
  score, the server's ``predict.fast`` span) against the exact cold
  path's per-nest time on the same nests.  Bar: fast p99 at most
  ``P99_RATIO_BAR`` (0.05) of exact cold p99.

The regression gate additionally tracks accuracy, fast decisions/sec,
and the p99 ratio against ``benchmarks/baselines/predict.json``.

Runs under pytest (``pytest benchmarks/bench_predict.py``) and as a
standalone script for the CI job::

    python benchmarks/bench_predict.py --quick

Both modes write ``results/predict.txt`` and ``results/predict.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_REPO = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro import api
from repro.corpus import CorpusConfig
from repro.corpus.generator import generate_corpus
from repro.engine import AnalysisEngine
from repro.predict.model import load_default_model

#: Held-out top-1 agreement the default model must clear (the ISSUE bar).
ACCURACY_BAR = 0.85

#: fast p99 / exact cold p99 must stay at or below this.
P99_RATIO_BAR = 0.05

#: The evaluation slice starts where the default model's training corpus
#: ends (see the artifact's ``trained.routines``); nests are drawn from
#: the same seeded sequential generator, so the slice is disjoint from
#: training yet identically distributed.
EVAL_NESTS = 600
EVAL_NESTS_QUICK = 200

#: Exact cold-path timing nests (labeling already times them all; this
#: caps the dedicated cold-latency pass).
LATENCY_NESTS = 60
LATENCY_NESTS_QUICK = 25

def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * len(sorted_values)) - 1))
    return sorted_values[rank]

def _latency_summary(samples_s: list[float]) -> dict:
    ordered = sorted(samples_s)
    return {
        "count": len(ordered),
        "p50_s": _percentile(ordered, 0.50),
        "p95_s": _percentile(ordered, 0.95),
        "p99_s": _percentile(ordered, 0.99),
        "mean_s": sum(ordered) / len(ordered) if ordered else 0.0,
    }

def run_predict_bench(quick: bool = False,
                      workers: int | None = 8) -> dict:
    """The full experiment; returns the JSON-ready payload."""
    predictor = load_default_model()
    if predictor is None:
        raise RuntimeError(
            "no committed default model artifact; run `make train`")
    trained_routines = int(predictor.trained.get("routines", 4800))
    eval_count = EVAL_NESTS_QUICK if quick else EVAL_NESTS
    machine = api.coerce_machine("alpha")

    nests = generate_corpus(CorpusConfig(
        routines=trained_routines + eval_count,
        seed=int(predictor.trained.get("corpus_seed", 1997))))
    eval_nests = nests[trained_routines:]

    # -- exact labels for the held-out slice (the accuracy reference) --------
    t0 = time.monotonic()
    report = api.optimize_many(eval_nests, machine, workers=workers)
    label_wall = time.monotonic() - t0
    labels = [tuple(item.result.unroll) if item.ok and item.result else None
              for item in report.items]

    # -- accuracy ------------------------------------------------------------
    hits = total = unsupported = 0
    per_depth: dict[str, dict] = {}
    mismatches: list[dict] = []
    for nest, label in zip(eval_nests, labels):
        if label is None:
            continue
        prediction = predictor.predict(nest, machine)
        if prediction is None:
            unsupported += 1
            continue
        hit = prediction.unroll == label
        total += 1
        hits += hit
        bucket = per_depth.setdefault(str(nest.depth),
                                      {"correct": 0, "total": 0})
        bucket["total"] += 1
        bucket["correct"] += hit
        if not hit and len(mismatches) < 10:
            mismatches.append({"nest": nest.name,
                               "predicted": list(prediction.unroll),
                               "exact": list(label),
                               "confidence": prediction.confidence})
    for bucket in per_depth.values():
        bucket["top1"] = bucket["correct"] / bucket["total"]
    accuracy = hits / total if total else 0.0

    # -- fast-tier decision latency ------------------------------------------
    # One warm-up pass (bytecode, caches), then time every eval nest.
    for nest in eval_nests[:20]:
        predictor.predict(nest, machine)
    fast_samples: list[float] = []
    for nest in eval_nests:
        t0 = time.perf_counter()
        predictor.predict(nest, machine)
        fast_samples.append(time.perf_counter() - t0)
    fast = _latency_summary(fast_samples)

    # -- exact cold-path latency on the same nests ---------------------------
    latency_count = LATENCY_NESTS_QUICK if quick else LATENCY_NESTS
    engine = AnalysisEngine()  # fresh: every nest below is a cold miss
    exact_samples: list[float] = []
    for nest in eval_nests[:latency_count]:
        t0 = time.perf_counter()
        engine.optimize(nest, machine)
        exact_samples.append(time.perf_counter() - t0)
    exact = _latency_summary(exact_samples)

    p99_ratio = fast["p99_s"] / exact["p99_s"] if exact["p99_s"] else 0.0
    return {
        "model_id": predictor.model_id,
        "quick": quick,
        "eval": {
            "nests": len(eval_nests),
            "first_routine": trained_routines,
            "labeled": total,
            "unsupported_depths": unsupported,
            "label_wall_s": label_wall,
            "accuracy": accuracy,
            "mismatch_rate": 1.0 - accuracy,
            "per_depth": per_depth,
            "sample_mismatches": mismatches,
        },
        "latency": {
            "fast": fast,
            "exact_cold": exact,
            "p99_ratio": p99_ratio,
            "speedup_p50": (exact["p50_s"] / fast["p50_s"]
                            if fast["p50_s"] else 0.0),
            "fast_per_sec": (1.0 / fast["mean_s"]
                             if fast["mean_s"] else 0.0),
        },
        "training_metrics": dict(predictor.metrics),
    }

def acceptance(payload: dict) -> tuple[bool, list[str]]:
    """The hard bars: held-out accuracy and the fast/exact p99 ratio."""
    problems = []
    accuracy = payload["eval"]["accuracy"]
    if accuracy < ACCURACY_BAR:
        problems.append(
            f"held-out top-1 {accuracy:.3f} below the "
            f"{ACCURACY_BAR:.2f} bar")
    ratio = payload["latency"]["p99_ratio"]
    if ratio > P99_RATIO_BAR:
        problems.append(
            f"fast p99 is {ratio:.3f}x exact cold p99 "
            f"(bar {P99_RATIO_BAR:.2f}x)")
    if payload["eval"]["unsupported_depths"]:
        problems.append(
            f"{payload['eval']['unsupported_depths']} eval nest(s) at "
            f"depths the committed model cannot serve")
    return not problems, problems

def format_predict(payload: dict) -> str:
    eval_doc = payload["eval"]
    latency = payload["latency"]
    lines = [
        f"Fast-tier gates for {payload['model_id']} "
        f"({eval_doc['nests']} held-out nests from routine "
        f"{eval_doc['first_routine']})",
        f"held-out top-1: {eval_doc['accuracy']:.4f} "
        f"(bar {ACCURACY_BAR:.2f})",
    ]
    for depth, bucket in sorted(eval_doc["per_depth"].items()):
        lines.append(f"  depth {depth}: {bucket['top1']:.3f} "
                     f"({bucket['correct']}/{bucket['total']})")
    lines.append("")
    lines.append(f"{'path':<12s} {'p50':>10s} {'p99':>10s}")
    lines.append(f"{'fast':<12s} {1e6 * latency['fast']['p50_s']:>8.0f}us "
                 f"{1e6 * latency['fast']['p99_s']:>8.0f}us")
    lines.append(f"{'exact cold':<12s} "
                 f"{1e3 * latency['exact_cold']['p50_s']:>8.1f}ms "
                 f"{1e3 * latency['exact_cold']['p99_s']:>8.1f}ms")
    lines.append(f"p99 ratio: {latency['p99_ratio']:.4f} "
                 f"(bar {P99_RATIO_BAR:.2f}), p50 speedup "
                 f"{latency['speedup_p50']:.0f}x, "
                 f"{latency['fast_per_sec']:.0f} decisions/s")
    return "\n".join(lines)

def write_results(payload: dict, results_dir: pathlib.Path) -> None:
    results_dir.mkdir(exist_ok=True)
    (results_dir / "predict.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    (results_dir / "predict.txt").write_text(
        format_predict(payload) + "\n")

# -- pytest mode --------------------------------------------------------------

def test_predict_gates(results_dir):
    payload = run_predict_bench(quick=True)
    write_results(payload, results_dir)
    print("\n" + format_predict(payload))
    ok, problems = acceptance(payload)
    assert ok, problems

# -- script mode --------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller eval slice (CI smoke)")
    parser.add_argument("--workers", type=int, default=8,
                        help="labeling process-pool size")
    parser.add_argument("--results-dir", default=str(_REPO / "results"))
    args = parser.parse_args(argv)

    payload = run_predict_bench(quick=args.quick, workers=args.workers)
    write_results(payload, pathlib.Path(args.results_dir))
    print(format_predict(payload))
    ok, problems = acceptance(payload)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 0 if ok else 1

if __name__ == "__main__":
    sys.exit(main())
