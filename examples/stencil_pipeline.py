"""The full analysis pipeline on a stencil, step by step.

Walks a Jacobi-style kernel through every stage of the paper: uniformly
generated sets, self/group reuse, the reuse tables, unroll selection, the
actual transformation, scalar replacement, and a simulated before/after --
printing what each stage found.

Run:  python examples/stencil_pipeline.py
"""

from repro.kernels.suite import jacobi
from repro.ir.printer import format_nest
from repro.machine import dec_alpha
from repro.machine.simulator import simulate
from repro.reuse import (
    group_spatial_partition,
    group_temporal_partition,
    innermost_localized_space,
    partition_ugs,
    self_spatial_space,
    self_temporal_space,
)
from repro.unroll.optimize import choose_unroll
from repro.unroll.rrs import compute_mrrs, compute_rrs
from repro.unroll.scalar_replacement import plan_scalar_replacement
from repro.unroll.transform import unroll_and_jam

def main() -> None:
    kernel = jacobi(120)
    nest = kernel.nest
    machine = dec_alpha()

    print("Kernel:")
    print(format_nest(nest))

    print("\n-- Stage 1: uniformly generated sets " + "-" * 30)
    localized = innermost_localized_space(nest)
    for ugs in partition_ugs(nest):
        print(f"\n{ugs.pretty()}")
        print(f"  H = {ugs.matrix}")
        print(f"  R_ST = {self_temporal_space(ugs.matrix)}")
        print(f"  R_SS = {self_spatial_space(ugs.matrix)}")
        gts = group_temporal_partition(ugs, localized)
        gss = group_spatial_partition(ugs, localized,
                                      machine.cache_line_words)
        print(f"  group-temporal sets: {len(gts)}, group-spatial: {len(gss)}")
        rrs = compute_rrs(ugs)
        mrrs = compute_mrrs(rrs)
        print(f"  register-reuse sets: {len(rrs)} in {len(mrrs)} mergeable "
              "groups")

    print("\n-- Stage 2: unroll selection " + "-" * 39)
    result = choose_unroll(nest, machine, bound=6)
    print(f"candidate loops: {result.candidates}, safety: {result.safety}")
    print(f"chosen unroll:   {result.unroll}")
    print(f"loop balance:    {float(result.balance):.2f} "
          f"(machine: {float(machine.balance):.2f})")

    print("\n-- Stage 3: transformation " + "-" * 41)
    unrolled = unroll_and_jam(nest, result.unroll)
    plan = plan_scalar_replacement(unrolled.main)
    print(f"body copies:       {unrolled.copies}")
    print(f"array references:  {plan.total_references} "
          f"({plan.removed} become register-resident)")
    print(f"registers needed:  {plan.registers} / {machine.registers}")

    print("\n-- Stage 4: simulation " + "-" * 45)
    before = simulate(nest, machine, kernel.bindings, kernel.shapes)
    after = simulate(nest, machine, kernel.bindings, kernel.shapes,
                     unroll=result.unroll)
    print(f"original cycles:  {float(before.cycles):>12.0f} "
          f"(misses {before.cache_misses})")
    print(f"unrolled cycles:  {float(after.cycles):>12.0f} "
          f"(misses {after.cache_misses})")
    print(f"speedup:          {float(before.cycles / after.cycles):.2f}x")

if __name__ == "__main__":
    main()
