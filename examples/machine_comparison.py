"""One loop, three machines: how the architecture changes the decision.

Runs the same memory-bound kernel through the optimizer on the DEC Alpha
model, the HP PA-RISC model, and a forward-looking prefetching machine
(the paper's future-work architecture), showing how cache geometry, miss
penalty and prefetch bandwidth move the chosen unroll vector and the
achieved cycles.

Run:  python examples/machine_comparison.py
"""

from fractions import Fraction

from repro.balance import loop_balance
from repro.kernels.suite import cond9
from repro.machine import dec_alpha, hp_pa_risc, prefetching_machine
from repro.machine.simulator import simulate
from repro.unroll.optimize import choose_unroll

def main() -> None:
    kernel = cond9(120)
    machines = [
        dec_alpha(),
        hp_pa_risc(),
        prefetching_machine(Fraction(1, 2)),
        dec_alpha().with_registers(64),
    ]

    print(f"Kernel: {kernel.name} ({kernel.description}), N = "
          f"{kernel.bindings['N']}\n")
    print(f"{'machine':<22s} {'beta_M':>6s} {'unroll':<10s} {'beta_L':>7s} "
          f"{'regs':>5s} {'norm time':>9s} {'misses':>8s}")

    baseline = {}
    for machine in machines:
        result = choose_unroll(kernel.nest, machine, bound=8)
        point = result.tables.point(result.unroll)
        breakdown = loop_balance(point, machine)
        if machine.name not in baseline:
            base = simulate(kernel.nest, machine, kernel.bindings,
                            kernel.shapes)
        sim = simulate(kernel.nest, machine, kernel.bindings, kernel.shapes,
                       unroll=result.unroll)
        print(f"{machine.name:<22s} {float(machine.balance):>6.2f} "
              f"{str(result.unroll):<10s} {float(breakdown.balance):>7.2f} "
              f"{int(point.registers):>5d} "
              f"{sim.normalized_to(base):>9.2f} {sim.cache_misses:>8d}")

    print("\nReading the table:")
    print(" * the Alpha's tiny cache makes the miss term huge, so the")
    print("   model unrolls to share cache lines between copies;")
    print(" * the PA's large cache shrinks the miss term and the decision")
    print("   is driven by issue balance alone;")
    print(" * prefetch bandwidth hides part of the miss cost, moving the")
    print("   balance closer to the no-cache model (section 6);")
    print(" * a larger register file admits deeper unrolling (section 6).")

if __name__ == "__main__":
    main()
