"""The Table 1 experiment in miniature: how much dependence-graph space
the UGS model saves by never computing input dependences.

Generates a corpus of synthetic scientific routines, builds each routine's
dependence graph with and without input dependences, and prints the
paper's Table 1 histogram plus the aggregate savings.

Run:  python examples/dependence_savings.py [routines]
"""

import sys

from repro.corpus import CorpusConfig, generate_corpus
from repro.dependence import build_dependence_graph, graph_size_report
from repro.experiments.table1 import run_table1
from repro.ir.printer import format_nest

def main() -> None:
    routines = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    config = CorpusConfig(routines=routines)

    # Show one routine and its graph so the numbers feel concrete.
    sample = generate_corpus(CorpusConfig(routines=8, seed=config.seed))[3]
    print("A sample synthetic routine:")
    print(format_nest(sample))
    graph = build_dependence_graph(sample, include_input=True)
    print("\nIts dependence graph:")
    for edge in graph:
        print(f"  {edge.pretty()}")
    report = graph_size_report(graph)
    print(f"-> {report.total_edges} edges, {report.input_edges} of them "
          f"input ({100 * report.input_fraction:.0f}%)\n")

    print(f"Analyzing a corpus of {routines} routines...\n")
    print(run_table1(config).format())

if __name__ == "__main__":
    main()
