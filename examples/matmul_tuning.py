"""Tuning matrix multiply with the precomputed unroll tables.

Sweeps the whole two-loop unroll space of JIK matrix multiply, prints the
balance/register surface the tables predict, then cross-checks the model's
ranking against the trace-driven simulator -- the model's chosen point
should be at (or near) the simulated optimum.

Run:  python examples/matmul_tuning.py
"""

from repro.balance import loop_balance
from repro.kernels.suite import mmjik
from repro.machine import dec_alpha
from repro.machine.simulator import simulate
from repro.unroll.optimize import choose_unroll

def main() -> None:
    kernel = mmjik(32)
    machine = dec_alpha()
    result = choose_unroll(kernel.nest, machine, bound=4)
    tables = result.tables
    space = result.space

    print(f"Kernel: {kernel.name}   machine: {machine.name} "
          f"(beta_M = {machine.balance})")
    print(f"Unrolling loops {result.candidates} "
          f"(J and I of the J,I,K nest), bound 4\n")

    print("Predicted balance surface (rows: u_J, cols: u_I; * = infeasible):")
    header = "      " + "".join(f"{i:>8d}" for i in range(5))
    print(header)
    for uj in range(5):
        cells = []
        for ui in range(5):
            point = tables.point(space.embed((uj, ui)))
            balance = loop_balance(point, machine).balance
            mark = "*" if point.registers > machine.registers else " "
            cells.append(f"{float(balance):>7.2f}{mark}")
        print(f"u_J={uj:<2d}" + "".join(cells))

    print(f"\nModel's choice: u = {result.unroll} "
          f"(balance {float(result.balance):.2f}, "
          f"registers {int(tables.point(result.unroll).registers)})")

    print("\nSimulated cycles across the feasible space:")
    best_sim = None
    for u in space:
        point = tables.point(u)
        if point.registers > machine.registers:
            continue
        sim = simulate(kernel.nest, machine, kernel.bindings, kernel.shapes,
                       unroll=u)
        marker = "  <-- model's choice" if u == result.unroll else ""
        print(f"  u={u}  cycles={float(sim.cycles):>12.0f}{marker}")
        if best_sim is None or sim.cycles < best_sim[1]:
            best_sim = (u, sim.cycles)

    model_sim = simulate(kernel.nest, machine, kernel.bindings, kernel.shapes,
                         unroll=result.unroll)
    gap = float(model_sim.cycles / best_sim[1])
    print(f"\nSimulated optimum: u = {best_sim[0]}")
    print(f"Model's point is within {100 * (gap - 1):.1f}% of the simulated "
          "optimum.")

if __name__ == "__main__":
    main()
