"""Section 6's future work, made concrete: software prefetching and wide
machines.

Takes a miss-dominated kernel and walks the architectural staircase the
paper sketches: the 1997 Alpha, the same core with a software-prefetch
plan (this project's pass), a hardware-prefetch variant, and the
"future-wide" machine with both large registers and prefetch bandwidth --
showing how the unroll decision and the achieved cycles move.

Run:  python examples/prefetch_future.py
"""

from fractions import Fraction

from repro.kernels.suite import jacobi
from repro.machine import dec_alpha
from repro.machine.presets import future_wide, mips_r10k
from repro.machine.simulator import simulate
from repro.unroll.optimize import choose_unroll
from repro.unroll.prefetch import format_plan, plan_prefetch
from repro.unroll.transform import unroll_and_jam

def main() -> None:
    kernel = jacobi(120)
    nest = kernel.nest

    print("The software-prefetch plan for the original loop on the Alpha:")
    print(format_plan(plan_prefetch(nest, dec_alpha())))
    print()

    configs = [
        ("alpha", dec_alpha(), False),
        ("alpha + software prefetch", dec_alpha(), True),
        ("alpha + hw prefetch (p=1/2)", dec_alpha().with_prefetch(
            Fraction(1, 2)), False),
        ("mips-r10k", mips_r10k(), False),
        ("future-wide", future_wide(), False),
        ("future-wide + sw prefetch", future_wide(), True),
    ]

    base = simulate(nest, dec_alpha(), kernel.bindings, kernel.shapes)
    print(f"{'configuration':<28s} {'unroll':<10s} {'cycles':>12s} "
          f"{'vs alpha':>8s} {'stall misses':>12s}")
    for label, machine, sw_prefetch in configs:
        result = choose_unroll(nest, machine, bound=6)
        sim = simulate(nest, machine, kernel.bindings, kernel.shapes,
                       unroll=result.unroll, software_prefetch=sw_prefetch)
        print(f"{label:<28s} {str(result.unroll):<10s} "
              f"{float(sim.cycles):>12.0f} "
              f"{float(sim.cycles / base.cycles):>8.2f} "
              f"{sim.stall_misses:>12d}")

    print()
    print("Reading the staircase: prefetching (software or hardware) "
          "removes the stall term,")
    print("and the wide machine only reaches its flop rate because "
          "unroll-and-jam keeps its")
    print("memory pipes fed -- the paper's closing argument.")

if __name__ == "__main__":
    main()
