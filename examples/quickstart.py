"""Quickstart: optimize one loop nest end to end.

Builds the paper's introduction example (section 3.3), analyzes its
balance, lets the optimizer pick unroll amounts for a 2-flops-per-cycle
machine, shows the transformed code, and verifies the transformation is
semantics-preserving by running both versions.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

import numpy as np

from repro.balance import loop_balance
from repro.ir.builder import NestBuilder
from repro.ir.interp import run_nest, run_unrolled
from repro.ir.printer import format_nest
from repro.machine import MachineModel
from repro.unroll.optimize import choose_unroll
from repro.unroll.transform import unroll_and_jam

def build_intro_loop():
    """DO J / DO I: A(J) = A(J) + B(I) -- the paper's running example."""
    b = NestBuilder("intro", "paper section 3.3 example")
    J, I = b.loops(("J", 0, "N"), ("I", 0, "M"))
    b.assign(b.ref("A", J), b.ref("A", J) + b.ref("B", I))
    return b.build()

def main() -> None:
    nest = build_intro_loop()
    print("Original loop:")
    print(format_nest(nest))

    # A machine that retires two flops per memory op (beta_M = 1/2).
    machine = MachineModel(
        name="demo", mem_issue=Fraction(1), fp_issue=Fraction(2),
        registers=32, cache_size_words=1024, cache_line_words=4,
        cache_assoc=1, miss_penalty=12)
    print(f"\nMachine balance beta_M = {machine.balance}")

    result = choose_unroll(nest, machine, bound=8)
    point = result.tables.point(result.unroll)
    breakdown = loop_balance(point, machine)
    print(f"Chosen unroll vector:   {result.unroll}")
    print(f"Loop balance beta_L:    {float(breakdown.balance):.3f} "
          f"(objective |beta_L - beta_M| = {float(result.objective):.3f})")
    print(f"Memory ops / iteration: {point.memory_ops}")
    print(f"Flops / iteration:      {point.flops}")
    print(f"Register pressure:      {point.registers} "
          f"(machine has {machine.registers})")

    print("\nTransformed loop (jammed steady state):")
    print(format_nest(unroll_and_jam(nest, result.unroll).main))

    # Prove the transformation preserves semantics on a concrete run.
    n, m = 13, 9  # deliberately not divisible by the unroll step
    base = {"A": np.arange(float(n + 1)), "B": np.arange(float(m + 1))}
    expected = {k: v.copy() for k, v in base.items()}
    actual = {k: v.copy() for k, v in base.items()}
    run_nest(nest, {"N": n, "M": m}, expected)
    run_unrolled(nest, result.unroll, {"N": n, "M": m}, actual)
    assert np.array_equal(expected["A"], actual["A"])
    print("\nSemantics check: original and unrolled runs agree. OK")

if __name__ == "__main__":
    main()
